"""Scatter-to-gather pheromone update: Table III/IV versions 4-5.

The paper's atomic-free alternative inverts the data flow: instead of ants
*scattering* deposits onto the matrix, one thread **per matrix cell**
*gathers* — it scans every ant's tour and accumulates ``1/C_k`` whenever its
edge appears.  Evaporation is fused (each thread owns its cell).

The trade is brutal and the paper quantifies it exactly:

* version 5 (no tiling): every one of the ``c = n^2`` threads performs
  ``2 n^2`` four-byte loads, ``l = 2 n^4`` total — the ``loads:atomic``
  ratio is ``l : c``;
* version 4 stages tour segments through shared memory tiles of size θ:
  global traffic drops to ``γ = 2 n^4 / θ`` but the full ``2 n^4`` access
  stream now hits shared memory with its accompanying address/compare
  instructions, so the kernel stays orders of magnitude slower than the
  atomic deposit (Tables III/IV's bottom rows).

Implementation note: consecutive threads scan the tour array starting at
staggered offsets so that a warp's simultaneous reads hit consecutive
addresses (coalesced) rather than one broadcast address per cycle — the
natural way to write this kernel on CC 1.x, and what the ledger assumes.
"""

from __future__ import annotations

import numpy as np

from repro.core.pheromone.base import PheromoneUpdate, deposit_all, evaporate
from repro.core.report import StageReport
from repro.core.state import ColonyState
from repro.errors import ACOConfigError
from repro.simt.counters import KernelStats
from repro.simt.device import DeviceSpec
from repro.simt.kernel import LaunchConfig, grid_for
from repro.simt.memory import AccessPattern, GlobalMemory

__all__ = ["ScatterGatherPheromone", "ScatterGatherTiledPheromone"]

#: integer ops per scanned tour entry (address arithmetic + edge compare)
SCAN_INT_OPS = 2.0


class ScatterGatherPheromone(PheromoneUpdate):
    """Version 5 — plain scatter-to-gather (no tiling, no atomics)."""

    version = 5
    key = "scatter_gather"
    label = "Scatter to Gather"

    tiled = False

    def __init__(self, theta: int = 256) -> None:
        if theta < 32:
            raise ACOConfigError(f"theta must be >= 32, got {theta}")
        self.theta = int(theta)

    def launch_config(self, device: DeviceSpec, *, n: int, m: int) -> LaunchConfig:
        block = min(self.theta, device.max_threads_per_block)
        smem = 4 * block if self.tiled else 0
        return LaunchConfig(
            grid=grid_for(n * n, block), block=block, smem_per_block=smem
        )

    # ------------------------------------------------------------------ run

    def update(
        self, state: ColonyState, tours: np.ndarray, lengths: np.ndarray
    ) -> StageReport:
        evaporate(state)
        deposit_all(state, tours, lengths)
        stats, launch = self.predict_stats(state.n, state.m, state.device)
        return StageReport(stage="pheromone", kernel=self.key, stats=stats, launch=launch)

    # --------------------------------------------------------------- ledger

    def predict_stats(
        self,
        n: int,
        m: int,
        device: DeviceSpec,
        *,
        hot_degree: float = 0.0,
    ) -> tuple[KernelStats, LaunchConfig]:
        stats = KernelStats()
        launch = self.launch_config(device, n=n, m=m)
        self.record_launch(stats, launch)
        gmem = GlobalMemory(device, stats)

        cells = float(n) * n
        # Every cell-thread scans every ant's tour: m tours × (n + 1) entries,
        # 2 loads per entry (position and successor).
        scan_entries = cells * float(m) * (n + 1)
        if self.tiled:
            # Cooperative staging: each tile of θ entries is loaded once per
            # block from global memory, then re-read from shared by all θ
            # threads of the block — the paper's γ = 2 n^4 / θ.
            gmem.load(2.0 * scan_entries / launch.block, 4, AccessPattern.COALESCED)
            stats.smem_accesses += 2.0 * scan_entries  # the full access stream
            stats.smem_accesses += 2.0 * scan_entries / launch.block  # staging writes
        else:
            gmem.load(2.0 * scan_entries, 4, AccessPattern.COALESCED)
        stats.int_ops += SCAN_INT_OPS * 2.0 * scan_entries

        # Fused evaporation + accumulate + write-back of each cell.
        gmem.load(cells, 4, AccessPattern.COALESCED)
        gmem.store(cells, 4, AccessPattern.COALESCED)
        stats.flops += cells + 2.0 * float(m) * n  # evap + matched deposits
        gmem.load(float(m), 4, AccessPattern.BROADCAST)  # tour lengths
        stats.special_ops += float(m)  # 1 / C_k per ant
        return stats, launch


class ScatterGatherTiledPheromone(ScatterGatherPheromone):
    """Version 4 — scatter-to-gather with shared-memory tiling (paper's θ)."""

    version = 4
    key = "scatter_gather_tiled"
    label = "Scatter to Gather + Tilling"  # sic — the paper's spelling

    tiled = True
