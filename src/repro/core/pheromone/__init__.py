"""Pheromone-update strategies: the five Table III/IV kernel versions.

Use :func:`make_pheromone` to instantiate by version number (1-5), by
registry key, or pass a ready-made strategy through unchanged.
"""

from __future__ import annotations

from repro.core.pheromone.atomic import AtomicPheromone, AtomicSharedPheromone
from repro.core.pheromone.base import PheromoneUpdate, deposit_all, evaporate
from repro.core.pheromone.reduction import ReductionPheromone
from repro.core.pheromone.scatter_gather import (
    ScatterGatherPheromone,
    ScatterGatherTiledPheromone,
)

__all__ = [
    "PheromoneUpdate",
    "evaporate",
    "deposit_all",
    "AtomicSharedPheromone",
    "AtomicPheromone",
    "ReductionPheromone",
    "ScatterGatherTiledPheromone",
    "ScatterGatherPheromone",
    "PHEROMONE_VERSIONS",
    "make_pheromone",
]

#: Table III/IV rows in order: version number -> strategy class.
PHEROMONE_VERSIONS: dict[int, type[PheromoneUpdate]] = {
    cls.version: cls
    for cls in (
        AtomicSharedPheromone,
        AtomicPheromone,
        ReductionPheromone,
        ScatterGatherTiledPheromone,
        ScatterGatherPheromone,
    )
}

_BY_KEY = {cls.key: cls for cls in PHEROMONE_VERSIONS.values()}


def make_pheromone(which: int | str | PheromoneUpdate, **options) -> PheromoneUpdate:
    """Instantiate a pheromone strategy by version (1-5), key, or instance."""
    if isinstance(which, PheromoneUpdate):
        if options:
            raise ValueError("options cannot be combined with a strategy instance")
        return which
    if isinstance(which, bool):
        raise TypeError("pheromone selector cannot be a bool")
    if isinstance(which, int):
        try:
            cls = PHEROMONE_VERSIONS[which]
        except KeyError:
            raise ValueError(
                f"unknown pheromone version {which}; valid: {sorted(PHEROMONE_VERSIONS)}"
            ) from None
        return cls(**options)
    try:
        cls = _BY_KEY[which]
    except KeyError:
        raise ValueError(
            f"unknown pheromone key {which!r}; valid: {sorted(_BY_KEY)}"
        ) from None
    return cls(**options)
