"""Atomic pheromone update: Table III/IV versions 1-2.

Version 1 ("Atomic Ins. + Shared Memory") is the paper's best performer —
the baseline the slow-down rows are measured against:

* an **evaporation kernel** with one thread per matrix cell applies
  eq. 2 (coalesced read-modify-write of the whole matrix);
* a **deposit kernel** with one thread per tour position (one block per
  ant, the tour staged through shared memory) executes
  ``atomicAdd(&tau[i][j], 1/C_k)`` on both triangle cells of its edge.

Version 2 drops the shared staging: every thread reads its tour entries
straight from global memory.

On the Tesla C1060 (CC 1.3) the float ``atomicAdd`` does not exist in
hardware and is emulated with an integer CAS loop — the cost model charges
:data:`~repro.simt.atomics.AtomicModel.EMULATION_COST_FACTOR` per op on such
devices, which is exactly the paper's Figure 5 asymmetry between the two
GPUs.
"""

from __future__ import annotations

import numpy as np

from repro.core.pheromone.base import (
    PheromoneUpdate,
    deposit_all_batch,
    evaporate,
    evaporate_batch,
)
from repro.core.report import StageReport, cached_stage_reports
from repro.core.state import ColonyState
from repro.simt.atomics import AtomicModel
from repro.simt.counters import KernelStats
from repro.simt.device import DeviceSpec
from repro.simt.kernel import LaunchConfig, grid_for
from repro.simt.memory import AccessPattern, GlobalMemory

__all__ = ["AtomicSharedPheromone", "AtomicPheromone"]

#: threads per block for both kernels
PHEROMONE_BLOCK = 256


def _row_hot_degree(flat_idx: np.ndarray, n_cells: int, bk) -> np.ndarray:
    """Hottest-cell update multiplicity per row of a ``(B, k)`` index batch.

    ``bk`` is the backend ``flat_idx`` lives on.  Row ``b``'s value equals
    ``AtomicModel``'s contention record for that colony's index vector alone
    (offsets keep rows disjoint, so one ``unique``/``bincount`` pass covers
    the whole batch).  Integer counting, so every backend returns identical
    values.
    """
    xp = bk.xp
    B = flat_idx.shape[0]
    # The dense path allocates B * n_cells counters; unlike the deposit,
    # the hot degree is a pure measurement (identical either way), so the
    # guard can key on the actual scratch size.
    if B * n_cells > (1 << 24):
        return xp.asarray(
            [float(xp.unique(row, return_counts=True)[1].max()) for row in flat_idx]
        )
    offset = (xp.arange(B, dtype=np.int64) * n_cells)[:, None]
    counts = bk.bincount((flat_idx + offset).ravel(), minlength=B * n_cells)
    return counts.reshape(B, n_cells).max(axis=1).astype(np.float64)


class AtomicSharedPheromone(PheromoneUpdate):
    """Version 1 — atomic deposit with tours staged in shared memory."""

    version = 1
    key = "atomic_shared"
    label = "Atomic Ins. + Shared Memory"

    stage_tours_in_shared = True

    def launch_config(self, device: DeviceSpec, *, n: int, m: int) -> LaunchConfig:
        block = min(PHEROMONE_BLOCK, device.max_threads_per_block)
        smem = block * 4 if self.stage_tours_in_shared else 0
        # Deposit kernel shape: one block per ant, tour tiled over `block`.
        return LaunchConfig(grid=m, block=block, smem_per_block=smem)

    # ------------------------------------------------------------------ run

    def update(
        self, state: ColonyState, tours: np.ndarray, lengths: np.ndarray
    ) -> StageReport:
        evaporate(state)
        # Deposit functionally, measuring real atomic contention.
        stats_probe = KernelStats()
        atomics = AtomicModel(state.device, stats_probe)
        n = state.n
        frm = tours[:, :-1].astype(np.int64)
        to = tours[:, 1:].astype(np.int64)
        values = np.broadcast_to(
            (1.0 / lengths.astype(np.float64))[:, None], frm.shape
        ).ravel()
        atomics.add_float(state.pheromone, (frm * n + to).ravel(), values)
        atomics.add_float(state.pheromone, (to * n + frm).ravel(), values)

        stats, launch = self.predict_stats(
            state.n, state.m, state.device, hot_degree=stats_probe.atomic_hot_degree
        )
        return StageReport(stage="pheromone", kernel=self.key, stats=stats, launch=launch)

    def update_batch(
        self, bstate, tours: np.ndarray, lengths: np.ndarray, collect: bool = True
    ) -> list[StageReport]:
        """Batched atomic update with per-colony contention measurement.

        The hottest-cell multiplicity is measured per direction (forward,
        backward) and per row, matching the solo path's two ``add_float``
        probes whose maxima accumulate into one hot degree.  The hot degree
        feeds only the report's cost model, so ``collect=False`` skips the
        (bincount-heavy) measurement along with report materialization —
        the pheromone stack itself is updated identically.
        """
        evaporate_batch(bstate)
        flat_fw, flat_bw, _ = deposit_all_batch(bstate, tours, lengths)
        if not collect:
            return []
        cells = bstate.n * bstate.n
        bk = bstate.backend
        hot = bk.xp.maximum(
            _row_hot_degree(flat_fw, cells, bk), _row_hot_degree(flat_bw, cells, bk)
        )

        def build(h: float) -> StageReport:
            stats, launch = self.predict_stats(
                bstate.n, bstate.m, bstate.device, hot_degree=h
            )
            return StageReport(
                stage="pheromone", kernel=self.key, stats=stats, launch=launch
            )

        return cached_stage_reports((float(h) for h in hot), build)

    # --------------------------------------------------------------- ledger

    def predict_stats(
        self,
        n: int,
        m: int,
        device: DeviceSpec,
        *,
        hot_degree: float = 0.0,
    ) -> tuple[KernelStats, LaunchConfig]:
        stats = KernelStats()
        launch = self.launch_config(device, n=n, m=m)
        gmem = GlobalMemory(device, stats)

        # Evaporation kernel: n^2 threads, coalesced RMW of the matrix.
        cells = float(n) * n
        evap_launch = LaunchConfig(
            grid=grid_for(n * n, launch.block), block=launch.block
        )
        self.record_launch(stats, evap_launch)
        gmem.load(cells, 4, AccessPattern.COALESCED)
        gmem.store(cells, 4, AccessPattern.COALESCED)
        stats.flops += cells

        # Deposit kernel: one thread per tour position.
        self.record_launch(stats, launch)
        positions = float(m) * (n + 1)
        if self.stage_tours_in_shared:
            gmem.load(positions, 4, AccessPattern.COALESCED)  # cooperative stage
            stats.smem_accesses += 3.0 * positions  # write + read pos & next
        else:
            gmem.load(2.0 * positions, 4, AccessPattern.COALESCED)  # pos, next
        gmem.load(float(m), 4, AccessPattern.BROADCAST)  # tour lengths
        stats.special_ops += float(m)  # 1 / C_k
        stats.int_ops += 2.0 * positions
        stats.atomics_fp += 2.0 * float(m) * n  # both triangle cells per edge
        stats.atomic_hot_degree = max(stats.atomic_hot_degree, float(hot_degree))
        return stats, launch


class AtomicPheromone(AtomicSharedPheromone):
    """Version 2 — atomic deposit reading tours straight from global memory."""

    version = 2
    key = "atomic"
    label = "Atomic Ins."

    stage_tours_in_shared = False
