"""Retained solo ACS/MMAS loops: the parity oracles for the variant engine.

Until the variant redesign, :class:`~repro.core.acs.AntColonySystem` and
:class:`~repro.core.mmas.MaxMinAntSystem` *were* these standalone
numpy-only loops.  They now live here, verbatim, as the reference
implementations the property suite
(``tests/property/test_variant_parity.py``) pins the batched
:class:`~repro.core.batch.BatchEngine` variants against: engine row ``b``
under ``variant="acs"`` / ``"mmas"`` must produce bit-identical tours,
lengths and pheromone matrices to a reference run seeded like that row.

These classes are deliberately frozen (numpy-only, no batching, no
``report_every``, no backend selection) — do not grow features here; they
exist to be compared against and can be deleted once the engine path has
earned independent trust.
"""

from __future__ import annotations

import numpy as np

from repro.core.choice import ChoiceKernel
from repro.core.construction import TourConstruction, make_construction
from repro.core.params import ACOParams
from repro.core.report import StageReport
from repro.core.state import ColonyState
from repro.core.variant import ACSParams, MMASParams
from repro.errors import ACOConfigError, RunInterrupted
from repro.rng import ParkMillerLCG, make_rng
from repro.simt.counters import KernelStats
from repro.simt.device import TESLA_M2050, DeviceSpec
from repro.simt.kernel import Kernel, LaunchConfig, grid_for
from repro.simt.memory import AccessPattern, GlobalMemory
from repro.tsp.instance import TSPInstance
from repro.tsp.tour import (
    nearest_neighbor_tour,
    tour_length,
    tour_lengths,
    validate_tour,
)
from repro.util.timer import WallClock

__all__ = ["ReferenceAntColonySystem", "ReferenceMaxMinAntSystem"]


class ReferenceAntColonySystem(Kernel):
    """The pre-redesign solo ACS loop (numpy-only), kept as a parity oracle.

    ACS (Dorigo & Gambardella, 1997) modifies the Ant System in three ways:

    1. **Pseudo-random-proportional rule**: with probability ``q0`` an ant
       moves greedily to the best-``choice_info`` candidate; otherwise it
       applies the usual proportional rule.
    2. **Local pheromone update**: immediately after crossing an edge, an
       ant decays it toward ``tau0``: ``tau <- (1 - xi) tau + xi tau0``.
       Local updates within one step are applied once per *unique* directed
       edge, matching a GPU execution where colliding same-step writers are
       idempotent decays toward the same target.
    3. **Global update on the best tour only**: ``tau <- (1 - rho) tau +
       rho / C_bs`` on best-so-far-tour edges.
    """

    name = "acs"

    def __init__(
        self,
        instance: TSPInstance,
        params: ACOParams | None = None,
        acs: ACSParams | None = None,
        device: DeviceSpec = TESLA_M2050,
    ) -> None:
        self.params = params or ACOParams()
        self.acs = acs or ACSParams()
        self.device = device
        # The reference loop is numpy by definition; pin it so an
        # env-selected accelerated backend cannot drift in.
        self.state = ColonyState.create(
            instance, self.params, device, backend="numpy"
        )
        # ACS tau0 = 1 / (n * C_nn); reuse the AS state's m/C_nn scaling.
        self.tau0 = self.state.tau0 / (self.state.m * self.state.n)
        self.state.pheromone[:, :] = self.tau0
        np.fill_diagonal(self.state.pheromone, 0.0)
        self.rng = ParkMillerLCG(
            n_streams=max(self.state.m * 2, 2),
            seed=self.params.seed,
            backend="numpy",
        )

    # ------------------------------------------------------------- geometry

    def launch_config(self, device: DeviceSpec, **problem) -> LaunchConfig:
        m = problem.get("m", self.state.m)
        theta = min(256, device.max_threads_per_block)
        return LaunchConfig(grid=m, block=theta, smem_per_block=8 * theta)

    # ----------------------------------------------------------- iteration

    def _choice_info(self) -> np.ndarray:
        p = self.params
        choice = np.power(self.state.pheromone, p.alpha) * np.power(
            self.state.eta, p.beta
        )
        np.fill_diagonal(choice, 0.0)
        return choice

    def construct(self) -> tuple[np.ndarray, StageReport]:
        """One ACS construction pass with per-step local updates."""
        st = self.state
        n, m = st.n, st.m
        choice = self._choice_info()
        tau = st.pheromone
        xi, q0 = self.acs.xi, self.acs.q0

        stats = KernelStats()
        launch = self.launch_config(self.device, n=n, m=m)
        self.record_launch(stats, launch)
        gmem = GlobalMemory(self.device, stats)

        ant_idx = np.arange(m)
        tours = np.empty((m, n + 1), dtype=np.int32)
        visited = np.zeros((m, n), dtype=bool)

        u = self.rng.uniform()
        start = np.minimum((u[:m] * n).astype(np.int64), n - 1)
        stats.rng_lcg += m
        tours[:, 0] = start
        visited[ant_idx, start] = True
        cur = start

        for step in range(1, n):
            w = np.where(visited, 0.0, choice[cur])  # (m, n)
            gmem.load(float(m) * n, 4, AccessPattern.COALESCED)
            stats.flops += 2.0 * m * n
            stats.int_ops += 2.0 * m * n

            u = self.rng.uniform()
            explore_dart, roulette_dart = u[:m], u[m : 2 * m]
            stats.rng_lcg += 2.0 * m

            greedy = np.argmax(w, axis=1)
            sums = w.sum(axis=1)
            cum = np.cumsum(w, axis=1)
            r = roulette_dart * sums
            roulette = np.minimum((cum < r[:, None]).sum(axis=1), n - 1)
            nxt = np.where(explore_dart < q0, greedy, roulette)
            stats.flops += float(m) * n  # argmax scan
            stats.smem_accesses += float(m) * n

            # Local pheromone update on the crossed edges (both directions);
            # unique directed edges per step (see class docstring).
            edges = np.unique(np.stack([cur, nxt], axis=1), axis=0)
            a, b = edges[:, 0], edges[:, 1]
            tau[a, b] = (1.0 - xi) * tau[a, b] + xi * self.tau0
            tau[b, a] = tau[a, b]
            stats.atomics_fp += 2.0 * m  # modeled: every ant writes its edge
            gmem.load(2.0 * m, 4, AccessPattern.RANDOM)

            visited[ant_idx, nxt] = True
            tours[:, step] = nxt
            cur = nxt

        tours[:, n] = tours[:, 0]
        report = StageReport(
            stage="construction", kernel=self.name, stats=stats, launch=launch
        )
        return tours, report

    def global_update(self) -> StageReport:
        """Best-so-far-only deposit: ``tau <- (1-rho) tau + rho/C_bs``."""
        st = self.state
        assert st.best_tour is not None and st.best_length is not None
        stats = KernelStats()
        launch = LaunchConfig(grid=max(1, st.n // 256 + 1), block=256)
        self.record_launch(stats, launch)

        rho = self.params.rho
        best = st.best_tour.astype(np.int64)
        a, b = best[:-1], best[1:]
        deposit = rho / float(st.best_length)
        st.pheromone[a, b] = (1.0 - rho) * st.pheromone[a, b] + deposit
        st.pheromone[b, a] = st.pheromone[a, b]

        gmem = GlobalMemory(self.device, stats)
        gmem.load(2.0 * st.n, 4, AccessPattern.RANDOM)
        gmem.store(2.0 * st.n, 4, AccessPattern.RANDOM)
        stats.flops += 4.0 * st.n
        return StageReport(
            stage="pheromone", kernel="acs_global", stats=stats, launch=launch
        )

    def run_iteration(self) -> tuple[int, list[StageReport]]:
        """One ACS iteration; returns (iteration best length, stage reports)."""
        tours, construction_report = self.construct()
        lengths = tour_lengths(tours, self.state.dist)
        self.state.record_tours(tours, lengths)
        update_report = self.global_update()
        self.state.iteration += 1
        return int(lengths.min()), [construction_report, update_report]

    def run(self, iterations: int):
        """Run several ACS iterations, tracking the best tour."""
        from repro.core.acs import ACSRunResult

        if iterations < 1:
            raise ACOConfigError(f"iterations must be >= 1, got {iterations}")
        bests: list[int] = []
        clock = WallClock()
        try:
            with clock:
                for _ in range(iterations):
                    best, _ = self.run_iteration()
                    bests.append(best)
        except KeyboardInterrupt:
            st = self.state
            if st.best_tour is None or st.best_length is None:
                raise
            partial = ACSRunResult(
                best_tour=st.best_tour,
                best_length=st.best_length,
                iteration_best_lengths=bests,
                wall_seconds=clock.elapsed,
            )
            raise RunInterrupted(partial, "ACS run interrupted") from None
        st = self.state
        assert st.best_tour is not None and st.best_length is not None
        validate_tour(st.best_tour, st.n)
        return ACSRunResult(
            best_tour=st.best_tour,
            best_length=st.best_length,
            iteration_best_lengths=bests,
            wall_seconds=clock.elapsed,
        )


class ReferenceMaxMinAntSystem(Kernel):
    """The pre-redesign solo MMAS loop (numpy-only), kept as a parity oracle.

    MMAS (Stützle & Hoos, 2000) modifies the Ant System in three ways:
    best-only deposit (iteration best, periodically best-so-far), trail
    limits ``[tau_min, tau_max]`` following the best-so-far length, and
    optimistic initialisation at ``tau_max``.
    """

    name = "mmas"

    def __init__(
        self,
        instance: TSPInstance,
        params: ACOParams | None = None,
        mmas: MMASParams | None = None,
        construction: int | str | TourConstruction = 8,
        device: DeviceSpec = TESLA_M2050,
    ) -> None:
        self.params = params or ACOParams()
        self.mmas = mmas or MMASParams()
        self.device = device
        self.construction = make_construction(construction)
        self.choice_kernel = ChoiceKernel()
        self.state = ColonyState.create(
            instance, self.params, device, backend="numpy"
        )

        # Optimistic initialisation: tau_max from the greedy tour.
        c_nn = tour_length(nearest_neighbor_tour(self.state.dist), self.state.dist)
        self._set_limits(float(c_nn))
        self.state.pheromone[:, :] = self.tau_max
        np.fill_diagonal(self.state.pheromone, 0.0)

        streams = self.construction.rng_streams(self.state.n, self.state.m)
        self.rng = make_rng(
            self.construction.rng_kind, streams, self.params.seed,
            backend="numpy",
        )
        self.trail_reinitialisations = 0

    # -------------------------------------------------------------- limits

    def _set_limits(self, best_length: float) -> None:
        """Recompute ``tau_max``/``tau_min`` from the current best length."""
        self.tau_max = 1.0 / (self.params.rho * best_length)
        self.tau_min = self.tau_max / (self.mmas.tau_min_divisor * self.state.n)

    def clamp_trails(self) -> None:
        """Clamp pheromone into ``[tau_min, tau_max]`` (diagonal stays 0)."""
        np.clip(
            self.state.pheromone, self.tau_min, self.tau_max,
            out=self.state.pheromone,
        )
        np.fill_diagonal(self.state.pheromone, 0.0)

    def reinitialise_trails(self) -> None:
        """Reset all trails to ``tau_max`` (stagnation escape)."""
        self.state.pheromone[:, :] = self.tau_max
        np.fill_diagonal(self.state.pheromone, 0.0)
        self.trail_reinitialisations += 1

    def branching_factor(self, lam: float = 0.05) -> float:
        """Mean λ-branching factor — the classical MMAS stagnation gauge."""
        tau = self.state.pheromone
        n = self.state.n
        off = ~np.eye(n, dtype=bool)
        rows = np.where(off, tau, np.nan)
        row_min = np.nanmin(rows, axis=1, keepdims=True)
        row_max = np.nanmax(rows, axis=1, keepdims=True)
        threshold = row_min + lam * (row_max - row_min)
        counts = np.nansum(rows >= threshold, axis=1)
        return float(counts.mean())

    # ------------------------------------------------------------- geometry

    def launch_config(self, device: DeviceSpec, **problem) -> LaunchConfig:
        n = problem.get("n", self.state.n)
        return LaunchConfig(grid=grid_for(n * n, 256), block=256)

    # --------------------------------------------------------------- update

    def update_pheromone(
        self, deposit_tour: np.ndarray, deposit_length: int
    ) -> StageReport:
        """Evaporate everywhere, deposit on one tour, clamp to the limits."""
        st = self.state
        stats = KernelStats()
        launch = self.launch_config(self.device, n=st.n)
        gmem = GlobalMemory(self.device, stats)

        # Evaporation sweep (the dominant kernel: n^2 cells).
        self.record_launch(stats, launch)
        st.pheromone *= 1.0 - self.params.rho
        cells = float(st.n) * st.n
        gmem.load(cells, 4, AccessPattern.COALESCED)
        gmem.store(cells, 4, AccessPattern.COALESCED)
        stats.flops += cells

        # Single-tour deposit (one block).
        deposit_launch = LaunchConfig(
            grid=1, block=min(256, self.device.max_threads_per_block)
        )
        self.record_launch(stats, deposit_launch)
        t = deposit_tour.astype(np.int64)
        a, b = t[:-1], t[1:]
        delta = 1.0 / float(deposit_length)
        st.pheromone[a, b] += delta
        st.pheromone[b, a] += delta
        stats.atomics_fp += 2.0 * st.n
        gmem.load(float(st.n + 1), 4, AccessPattern.COALESCED)

        # Clamp kernel (fused in practice; counted as one more sweep).
        self.clamp_trails()
        self.record_launch(stats, launch)
        gmem.load(cells, 4, AccessPattern.COALESCED)
        gmem.store(cells, 4, AccessPattern.COALESCED)
        stats.flops += 2.0 * cells  # two compares per cell

        return StageReport(
            stage="pheromone", kernel="mmas_update", stats=stats, launch=launch
        )

    # ------------------------------------------------------------ iteration

    def run_iteration(self) -> tuple[int, list[StageReport]]:
        """One MMAS iteration; returns (iteration best, stage reports)."""
        st = self.state
        stages: list[StageReport] = []
        if self.construction.needs_choice_info:
            stages.append(self.choice_kernel.run(st))

        result = self.construction.build(st, self.rng)
        stages.append(result.report)
        lengths = tour_lengths(result.tours, st.dist)

        it_best = int(np.argmin(lengths))
        improved = st.best_length is None or int(lengths[it_best]) < st.best_length
        st.record_tours(result.tours, lengths)
        if improved:
            assert st.best_length is not None
            self._set_limits(float(st.best_length))

        # Deposit schedule: iteration best, periodically best-so-far.
        k = self.mmas.use_best_so_far_every
        use_bsf = k > 0 and st.iteration % k == k - 1
        if use_bsf:
            assert st.best_tour is not None and st.best_length is not None
            stages.append(self.update_pheromone(st.best_tour, st.best_length))
        else:
            stages.append(
                self.update_pheromone(result.tours[it_best], int(lengths[it_best]))
            )
        st.iteration += 1
        return int(lengths[it_best]), stages

    def run(self, iterations: int, *, reinit_branching: float | None = None):
        """Run MMAS; optionally reinitialise trails when the branching
        factor falls below ``reinit_branching`` (e.g. 2.05)."""
        from repro.core.mmas import MMASRunResult

        if iterations < 1:
            raise ACOConfigError(f"iterations must be >= 1, got {iterations}")
        bests: list[int] = []
        clock = WallClock()
        try:
            with clock:
                for _ in range(iterations):
                    best, _ = self.run_iteration()
                    bests.append(best)
                    if (
                        reinit_branching is not None
                        and self.branching_factor() < reinit_branching
                    ):
                        self.reinitialise_trails()
        except KeyboardInterrupt:
            st = self.state
            if st.best_tour is None or st.best_length is None:
                raise
            partial = MMASRunResult(
                best_tour=st.best_tour,
                best_length=st.best_length,
                iteration_best_lengths=bests,
                wall_seconds=clock.elapsed,
                trail_reinitialisations=self.trail_reinitialisations,
            )
            raise RunInterrupted(partial, "MMAS run interrupted") from None
        st = self.state
        assert st.best_tour is not None and st.best_length is not None
        validate_tour(st.best_tour, st.n)
        return MMASRunResult(
            best_tour=st.best_tour,
            best_length=st.best_length,
            iteration_best_lengths=bests,
            wall_seconds=clock.elapsed,
            trail_reinitialisations=self.trail_reinitialisations,
        )
