"""The :class:`AntSystem` colony: composition root of the GPU simulation.

An ``AntSystem`` wires together a TSP instance, the AS parameters, a target
device, one of the eight tour-construction strategies and one of the five
pheromone-update strategies, and runs iterations:

1. (if the construction strategy uses it) the **Choice kernel** refreshes
   ``choice_info = tau^alpha * eta^beta``;
2. the **construction** strategy builds one tour per ant;
3. tour lengths are evaluated;
4. the **pheromone** strategy evaporates and deposits.

Each stage yields a :class:`~repro.core.report.StageReport`; modeled kernel
times come from the calibrated cost model (or an explicit
:class:`~repro.simt.timing.CostParams`).

Execution-wise, ``AntSystem`` is the ``B = 1`` view of the batched
multi-colony engine (:class:`~repro.core.batch.BatchEngine`): every
iteration runs through the same vectorized kernels a B-colony batch uses,
so the solo path and the batched path can never drift apart numerically.

Examples
--------
>>> from repro.tsp import uniform_instance
>>> from repro.core import AntSystem
>>> colony = AntSystem(uniform_instance(40, seed=1), construction=7, pheromone=1)
>>> result = colony.run(iterations=3)
>>> result.best_length > 0
True
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.batch import BatchEngine
from repro.core.construction import TourConstruction, make_construction
from repro.core.params import ACOParams
from repro.core.pheromone import PheromoneUpdate, make_pheromone
from repro.core.report import IterationReport
from repro.errors import ACOConfigError
from repro.simt.device import TESLA_M2050, DeviceSpec
from repro.simt.timing import CostParams
from repro.tsp.instance import TSPInstance

__all__ = ["AntSystem", "RunResult", "run_engine_view"]


def run_engine_view(
    engine,
    iterations: int,
    report_every: int,
    wrap,
    interrupt_message: str,
    sync,
):
    """The shared run body of every B=1 engine view (AS/ACS/MMAS).

    Runs the engine, keeps the view's state mirror coherent (``sync()``
    runs on both the success and the interrupt path), and re-wraps a
    :class:`~repro.errors.RunInterrupted` so the partial carried outward
    is the view's own result type: ``wrap(row, wall_seconds)`` builds the
    result from the engine row either way.
    """
    from repro.errors import RunInterrupted

    try:
        batch = engine.run(iterations, report_every=report_every)
    except RunInterrupted as exc:
        sync()
        partial = wrap(exc.partial.results[0], exc.partial.wall_seconds)
        raise RunInterrupted(partial, interrupt_message) from None
    sync()
    return wrap(batch.results[0], batch.wall_seconds)


@dataclass
class RunResult:
    """Summary of an :meth:`AntSystem.run` call.

    ``wall_seconds`` is this colony's **amortized share** of the run that
    produced it: for a solo run it is the true wall-clock, but for a row of
    a :class:`~repro.core.batch.BatchEngine` run it is ``batch wall / B``
    (the per-colony cost the row effectively paid inside the batch).
    Summing shares across different batches under-reports real elapsed
    time; throughput accounting must use the batch-level
    :attr:`~repro.core.batch.BatchRunResult.wall_seconds` instead.
    """

    best_tour: np.ndarray
    best_length: int
    iteration_best_lengths: list[int]
    reports: list[IterationReport]
    wall_seconds: float
    device: DeviceSpec

    def mean_stage_time(self, stage: str, params: CostParams) -> float:
        """Mean modeled seconds per iteration of one stage family."""
        if not self.reports:
            return 0.0
        total = 0.0
        for rep in self.reports:
            total += sum(
                s.modeled_time(self.device, params)
                for s in rep.stages
                if s.stage == stage
            )
        return total / len(self.reports)

    def mean_iteration_time(self, params: CostParams) -> float:
        """Mean modeled seconds per full iteration."""
        if not self.reports:
            return 0.0
        return sum(r.total_time(self.device, params) for r in self.reports) / len(
            self.reports
        )


class AntSystem:
    """GPU-simulated Ant System for the symmetric TSP.

    Parameters
    ----------
    instance:
        The TSP instance to solve.
    params:
        AS parameters; defaults to the paper's settings.
    device:
        Simulated GPU (default: Tesla M2050, the newer paper device).
    construction:
        Construction strategy — version number 1-8, registry key, or
        instance (see :func:`repro.core.construction.make_construction`).
        Default 8, the paper's best data-parallel kernel.
    pheromone:
        Pheromone strategy — version 1-5, key, or instance.  Default 1,
        the paper's best (atomics + shared memory).
    construction_options / pheromone_options:
        Extra constructor arguments for the strategies (e.g. ``tile=512``,
        ``theta=128``).
    backend:
        Array backend executing the iteration kernels — a name
        (``"numpy"``, ``"cupy"``), an
        :class:`~repro.backend.ArrayBackend` instance, or ``None`` to
        resolve ``ACO_BACKEND`` / the numpy default.
    """

    def __init__(
        self,
        instance: TSPInstance,
        params: ACOParams | None = None,
        device: DeviceSpec = TESLA_M2050,
        construction: int | str | TourConstruction = 8,
        pheromone: int | str | PheromoneUpdate = 1,
        construction_options: dict | None = None,
        pheromone_options: dict | None = None,
        backend=None,
    ) -> None:
        self.params = params or ACOParams()
        self.device = device
        self.construction = make_construction(
            construction, **(construction_options or {})
        )
        self.pheromone = make_pheromone(pheromone, **(pheromone_options or {}))
        # AntSystem is the B = 1 view of the batched engine: every iteration
        # runs through the same vectorized kernels a B-colony batch uses.
        self.engine = BatchEngine(
            instance,
            self.params,
            device=device,
            construction=self.construction,
            pheromone=self.pheromone,
            backend=backend,
        )
        self.backend = self.engine.backend
        self.work = self.engine.work
        self.state = self.engine.state.colony_view(0)
        self.choice_kernel = self.engine.choice_kernel
        self.rng = self.engine.rng

    # ------------------------------------------------------------ iteration

    def run_iteration(self) -> IterationReport:
        """Execute one full AS iteration on the simulated device."""
        report = self.engine.run_iteration()[0]
        self._sync_view()
        return report

    def _sync_view(self) -> None:
        """Mirror the batch row's per-iteration outputs into ``self.state``."""
        self.engine.state.sync_colony_view(self.state)

    def run(
        self,
        iterations: int,
        report_every: int = 1,
        on_boundary=None,
        target_length: int | None = None,
    ) -> RunResult:
        """Run several iterations, tracking the best tour found.

        ``report_every=K`` runs the amortized device-resident loop: host
        transfers and :class:`~repro.core.report.IterationReport`
        materialization happen only every K-th iteration (and at the last),
        with the best-so-far record folded on the backend in between.  Best
        tour/length, per-iteration best lengths and the final pheromone are
        bit-identical for every K; only ``reports`` thins to boundary
        iterations.

        ``on_boundary`` / ``target_length`` are the B=1 views of the engine
        hooks (see :meth:`~repro.core.batch.BatchEngine.run`): the callback
        observes a :class:`~repro.core.batch.BoundaryUpdate` at every
        K-boundary and may return ``True`` to stop; ``target_length`` stops
        at the first boundary whose best is at or below it.
        """
        if iterations < 1:
            raise ACOConfigError(f"iterations must be >= 1, got {iterations}")
        try:
            batch = self.engine.run(
                iterations,
                report_every=report_every,
                on_boundary=on_boundary,
                target_lengths=target_length,
            )
        finally:
            # Keep the view coherent even when the run is interrupted.
            if self.engine.state.best_lengths is not None:
                self._sync_view()
        return batch.results[0]

    # -------------------------------------------------------------- costing

    def cost_params(self) -> CostParams:
        """The calibrated cost constants for this colony's device."""
        from repro.experiments.calibration import gpu_cost_params

        return gpu_cost_params(self.device)
