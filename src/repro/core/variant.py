"""Pluggable ACO variant strategies: one batched engine for AS / ACS / MMAS.

The paper's parallelization strategies — data-parallel tour construction,
vectorized pheromone kernels, device-resident amortized loops — are
variant-agnostic: Ant System, Ant Colony System and MAX-MIN Ant System all
iterate *construct → evaluate → update*.  What distinguishes them are two
seams, and this module factors exactly those out of the engine:

* a **choice policy** — how an ant picks its next city.  AS and MMAS use
  the random-proportional roulette embodied by the Table II construction
  families (:class:`RouletteChoice`); ACS replaces it with the
  pseudo-random-proportional rule (greedy with probability ``q0``) plus a
  per-step *local* pheromone evaporation toward ``tau0``
  (:class:`PseudoProportionalChoice`).
* an **update policy** — what happens to the trails after the iteration.
  AS deposits every ant through one of the Table III/IV kernels
  (:class:`DepositAllUpdate`); ACS deposits on the best-so-far tour only
  (:class:`GlobalBestUpdate`); MMAS deposits one tour per iteration under
  ``[tau_min, tau_max]`` trail limits with optional stagnation
  reinitialisation (:class:`TrailLimitsUpdate`).

A third, variant-orthogonal seam rides along: a **local-search policy** —
what happens to the best tours at report boundaries.  The default is
nothing (:class:`NoLocalSearch`); :class:`BatchedTwoOpt` polishes the
iteration-best (or best-so-far) tours with the batched nn-restricted
2-opt kernel before the update seam runs, so deposits see the improved
edges.

A :class:`VariantStrategy` composes one policy of each kind and is bound to
one :class:`~repro.core.batch.BatchEngine`.  Every policy is **batched over
B colonies** and **backend-resident** (``xp`` arrays, optional
:class:`~repro.backend.WorkBuffers` arena, bulk RNG), so ACS and MMAS ride
the same amortized ``report_every=K`` loop, replica batching, parameter
sweeps and micro-batching service the Ant System does.

The defining invariant extends the engine's solo equivalence: batch row
``b`` under variant V is bit-identical (tours, lengths, pheromone) to the
retained solo reference implementation of V
(:mod:`repro.core.reference`) seeded like that row —
``tests/property/test_variant_parity.py`` pins it across B and K.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.core.report import StageReport
from repro.errors import ACOConfigError
from repro.simt.counters import KernelStats
from repro.simt.device import DeviceSpec
from repro.simt.kernel import Kernel, LaunchConfig, grid_for
from repro.simt.memory import AccessPattern, GlobalMemory

__all__ = [
    "ACSParams",
    "MMASParams",
    "IterationContext",
    "ChoicePolicy",
    "RouletteChoice",
    "PseudoProportionalChoice",
    "UpdatePolicy",
    "DepositAllUpdate",
    "GlobalBestUpdate",
    "TrailLimitsUpdate",
    "LocalSearchPolicy",
    "NoLocalSearch",
    "BatchedTwoOpt",
    "LOCAL_SEARCH",
    "LS_TARGETS",
    "make_local_search",
    "VariantStrategy",
    "VARIANTS",
    "make_variant",
]


@dataclass(frozen=True)
class ACSParams:
    """ACS-specific parameters on top of :class:`~repro.core.params.ACOParams`.

    Attributes
    ----------
    q0:
        Exploitation probability of the pseudo-random-proportional rule
        (Dorigo & Gambardella recommend 0.9).
    xi:
        Local-update decay in (0, 1] (classically 0.1).
    """

    q0: float = 0.9
    xi: float = 0.1

    def __post_init__(self) -> None:
        if not 0.0 <= self.q0 <= 1.0:
            raise ACOConfigError(f"q0 must lie in [0, 1], got {self.q0}")
        if not 0.0 < self.xi <= 1.0:
            raise ACOConfigError(f"xi must lie in (0, 1], got {self.xi}")


@dataclass(frozen=True)
class MMASParams:
    """MMAS-specific knobs.

    Attributes
    ----------
    use_best_so_far_every:
        Every k-th iteration deposits the best-so-far tour instead of the
        iteration best (0 disables best-so-far deposits entirely).
    tau_min_divisor:
        ``tau_min = tau_max / (tau_min_divisor * n)`` — the classical
        choice is 2.
    """

    use_best_so_far_every: int = 5
    tau_min_divisor: float = 2.0

    def __post_init__(self) -> None:
        if self.use_best_so_far_every < 0:
            raise ACOConfigError(
                f"use_best_so_far_every must be >= 0, got {self.use_best_so_far_every}"
            )
        if self.tau_min_divisor <= 0:
            raise ACOConfigError(
                f"tau_min_divisor must be > 0, got {self.tau_min_divisor}"
            )


@dataclass(frozen=True)
class IterationContext:
    """Per-iteration best-record context handed to the update policies.

    Produced by the engine **after** the tour evaluation and the
    backend-resident best-so-far fold of the current iteration, **before**
    the pheromone update — exactly the point where the solo ACS/MMAS loops
    call ``record_tours`` and then deposit.  All arrays live on the
    engine's backend.
    """

    iteration: int  #: engine iteration counter (pre-increment, 0-based)
    it_best: np.ndarray  #: (B,) per-row argmin index into this iteration's lengths
    it_best_lengths: np.ndarray  #: (B,) int64 iteration-best lengths
    best_lengths: np.ndarray  #: (B,) int64 best-so-far lengths (current iteration folded in)
    best_tours: np.ndarray  #: (B, n + 1) int32 best-so-far tours
    improved: np.ndarray  #: (B,) bool — rows whose best-so-far improved this iteration


# ---------------------------------------------------------------------------
# choice policies
# ---------------------------------------------------------------------------


class ChoicePolicy(abc.ABC):
    """How ants pick the next city: the construction seam of a variant."""

    key: str = ""

    def bind(self, bstate) -> None:
        """Initialise per-engine state (pheromone init, per-row constants)."""

    def rng_kind(self, construction) -> str:
        """Random-stream family the policy consumes."""
        return construction.rng_kind

    def rng_streams(self, construction, n: int, m: int) -> int:
        """Streams *per colony* the policy needs."""
        return construction.rng_streams(n, m)

    @abc.abstractmethod
    def build_batch(self, bstate, construction, choice_kernel, rng, collect: bool):
        """Construct one tour per ant for every colony.

        Returns ``(tours, choice_reports, build_reports)`` with ``tours``
        backend-resident ``(B, m, n + 1)`` int32 and the report lists empty
        when ``collect`` is false.
        """


class RouletteChoice(ChoicePolicy):
    """AS/MMAS random-proportional rule via the Table II construction families."""

    key = "roulette"

    def build_batch(self, bstate, construction, choice_kernel, rng, collect: bool):
        if construction.needs_choice_info:
            choice_reports = choice_kernel.run_batch(bstate, collect=collect)
        else:
            choice_reports = []
        result = construction.build_batch(bstate, rng, collect=collect)
        return result.tours, choice_reports, result.reports


class PseudoProportionalChoice(ChoicePolicy):
    """ACS pseudo-random-proportional rule with per-step local evaporation.

    With probability ``q0`` an ant moves greedily to the best
    ``choice_info`` candidate; otherwise it applies the usual proportional
    roulette.  Immediately after crossing an edge the ant decays it toward
    ``tau0``: ``tau <- (1 - xi) tau + xi tau0`` (both directions).  Local
    updates within one step are applied once per *unique* directed edge,
    matching a GPU execution where colliding same-step writers are
    idempotent decays toward the same target.

    The batched implementation advances all ``B * m`` ants through each
    step in single ``xp`` operations; row ``b`` is bit-identical to the
    solo reference loop (:class:`repro.core.reference.ReferenceAntColonySystem`)
    seeded like that row.  ``tau0`` here is the ACS value
    ``1 / (n * C_nn)`` per colony, also used to (re-)initialise the
    pheromone stack at bind time.
    """

    key = "pseudo_proportional"

    def __init__(self, acs: ACSParams | None = None) -> None:
        self.acs = acs or ACSParams()
        self.tau0: np.ndarray | None = None  # (B,) device float64

    def bind(self, bstate) -> None:
        # ACS tau0 = 1 / (n * C_nn); the state's AS tau0 is m / C_nn.
        self.tau0 = bstate.tau0 / (bstate.m * bstate.n)
        bstate.pheromone[...] = self.tau0[:, None, None]
        diag = bstate.backend.xp.arange(bstate.n)
        bstate.pheromone[:, diag, diag] = 0.0

    def rng_kind(self, construction) -> str:
        return "lcg"

    def rng_streams(self, construction, n: int, m: int) -> int:
        # Per step: one explore dart + one roulette dart per ant.
        return max(2 * m, 2)

    def build_batch(self, bstate, construction, choice_kernel, rng, collect: bool):
        from repro.rng.streams import make_draws

        # The Choice kernel serves ACS too: choice_info is tau^alpha *
        # eta^beta at iteration start (local updates mutate tau but never
        # the current iteration's choice matrix, as in the solo loop).
        choice_reports = choice_kernel.run_batch(bstate, collect=collect)

        bk = bstate.backend
        xp = bk.xp
        wb = bstate.work
        B, n, m = bstate.B, bstate.n, bstate.m
        M = B * m
        S = self.rng_streams(construction, n, m)
        if rng.n_streams != B * S:
            raise ACOConfigError(
                f"batched ACS construction needs exactly {B * S} rng streams "
                f"for B={B} colonies, got {rng.n_streams}"
            )
        assert self.tau0 is not None

        def _buf(key: str, shape, dtype):
            if wb is None:
                return xp.empty(shape, dtype=dtype)
            return wb.get("acs." + key, shape, dtype)

        def _const(key: str, builder):
            if wb is None:
                return builder()
            return wb.cached(f"acs.{key}.{B}x{m}x{n}", builder)

        # Flattened mega-colony layout (as in the data-parallel kernels):
        # ant b*m + a reads choice row b*n + city.
        choice_rows = xp.ascontiguousarray(bstate.choice_info).reshape(B * n, n)
        flat_tau = bstate.pheromone.reshape(-1)
        row_off = _const(
            "row_off", lambda: xp.repeat(xp.arange(B, dtype=np.int64) * n, m)
        )
        col_of_ant = _const(
            "col", lambda: xp.repeat(xp.arange(B, dtype=np.int64), m)
        )
        ant_idx = _const("ant_idx", lambda: xp.arange(M))
        tours = xp.empty((M, n + 1), dtype=np.int32)  # escapes: never pooled
        visited = _buf("visited", (M, n), bool)
        visited[:] = False
        w = _buf("w", (M, n), np.float64)
        cum = _buf("cum", (M, n), np.float64)
        rows_idx = _buf("rows_idx", (M,), np.int64)
        take_kw = {"mode": "clip"} if xp is np and wb is not None else {}

        q0, xi = self.acs.q0, self.acs.xi
        nn2 = n * n

        # One (B * S,) draw vector per step plus the placement draw — the
        # exact per-step lockstep of the solo loop, pregenerated in bulk.
        draws = make_draws(rng, n, bulk=bstate.bulk_rng, work=wb, key="acs.rng")
        u = draws.next().reshape(B, S)
        start = xp.minimum((u[:, :m] * n).astype(np.int64), n - 1).reshape(M)
        tours[:, 0] = start
        visited[ant_idx, start] = True
        cur = start

        for step in range(1, n):
            u = draws.next().reshape(B, S)
            explore = u[:, :m].reshape(M)
            roulette = u[:, m : 2 * m].reshape(M)

            xp.add(row_off, cur, out=rows_idx)
            xp.take(choice_rows, rows_idx, axis=0, out=w, **take_kw)
            w[visited] = 0.0

            greedy = xp.argmax(w, axis=1)
            sums = w.sum(axis=1)
            xp.cumsum(w, axis=1, out=cum)
            r = roulette * sums
            rsel = xp.minimum((cum < r[:, None]).sum(axis=1), n - 1)
            nxt = xp.where(explore < q0, greedy, rsel)

            # Local pheromone update, once per unique directed edge per
            # colony (colony offsets keep rows disjoint in the flat view;
            # the symmetric copy reads the freshly written cells).
            gk = col_of_ant * nn2 + cur * n + nxt
            uk = xp.unique(gk)
            col = uk // nn2
            rem = uk - col * nn2
            a = rem // n
            b = rem - a * n
            bw = col * nn2 + b * n + a
            flat_tau[uk] = (1.0 - xi) * flat_tau[uk] + xi * self.tau0[col]
            flat_tau[bw] = flat_tau[uk]

            visited[ant_idx, nxt] = True
            tours[:, step] = nxt
            cur = nxt

        tours[:, n] = tours[:, 0]
        tours = tours.reshape(B, m, n + 1)
        reports = []
        if collect:
            stats, launch = self.predict_stats(n, m, bstate.device)
            report = StageReport(
                stage="construction", kernel="acs", stats=stats, launch=launch
            )
            reports = [report] * B
        return tours, choice_reports, reports

    def predict_stats(
        self, n: int, m: int, device: DeviceSpec
    ) -> tuple[KernelStats, LaunchConfig]:
        """Closed-form per-colony ledger mirroring the solo ACS construct."""
        stats = KernelStats()
        theta = min(256, device.max_threads_per_block)
        launch = LaunchConfig(grid=m, block=theta, smem_per_block=8 * theta)
        Kernel.record_launch(stats, launch)
        gmem = GlobalMemory(device, stats)
        steps = float(n - 1)
        mn = float(m) * n
        stats.rng_lcg += m + steps * 2.0 * m
        gmem.load(steps * mn, 4, AccessPattern.COALESCED)
        stats.flops += steps * 3.0 * mn  # weighting + argmax scan
        stats.int_ops += steps * 2.0 * mn
        stats.smem_accesses += steps * mn
        stats.atomics_fp += steps * 2.0 * m  # local updates, both directions
        gmem.load(steps * 2.0 * m, 4, AccessPattern.RANDOM)
        return stats, launch


# ---------------------------------------------------------------------------
# update policies
# ---------------------------------------------------------------------------


class UpdatePolicy(abc.ABC):
    """What the iteration does to the trails: the pheromone seam."""

    key: str = ""

    def bind(self, bstate) -> None:
        """Initialise per-engine state (trail limits, counters)."""

    @abc.abstractmethod
    def update_batch(
        self, bstate, pheromone, tours, lengths, ctx: IterationContext, collect: bool
    ) -> list[StageReport]:
        """Apply the variant's trail update in place; one report per colony
        when ``collect`` (empty list otherwise)."""


class DepositAllUpdate(UpdatePolicy):
    """AS rule: every ant deposits, via the selected Table III/IV kernel."""

    key = "deposit_all"

    def update_batch(self, bstate, pheromone, tours, lengths, ctx, collect):
        return pheromone.update_batch(bstate, tours, lengths, collect=collect)


class GlobalBestUpdate(UpdatePolicy):
    """ACS rule: only the best-so-far tour deposits, with decay restricted
    to its own edges — ``tau <- (1 - rho) tau + rho / C_bs``."""

    key = "global_best"

    def update_batch(self, bstate, pheromone, tours, lengths, ctx, collect):
        xp = bstate.backend.xp
        B, n = bstate.B, bstate.n
        t = ctx.best_tours.astype(np.int64)
        a, b = t[:, :-1], t[:, 1:]
        rho = bstate.rho
        deposit = rho / ctx.best_lengths.astype(np.float64)
        flat = bstate.pheromone.reshape(B, n * n)
        rows = xp.arange(B)[:, None]
        fw = a * n + b
        bw = b * n + a
        flat[rows, fw] = (1.0 - rho)[:, None] * flat[rows, fw] + deposit[:, None]
        flat[rows, bw] = flat[rows, fw]
        if not collect:
            return []
        stats, launch = self.predict_stats(n, bstate.device)
        report = StageReport(
            stage="pheromone", kernel="acs_global", stats=stats, launch=launch
        )
        return [report] * B

    def predict_stats(
        self, n: int, device: DeviceSpec
    ) -> tuple[KernelStats, LaunchConfig]:
        stats = KernelStats()
        launch = LaunchConfig(grid=max(1, n // 256 + 1), block=256)
        Kernel.record_launch(stats, launch)
        gmem = GlobalMemory(device, stats)
        gmem.load(2.0 * n, 4, AccessPattern.RANDOM)
        gmem.store(2.0 * n, 4, AccessPattern.RANDOM)
        stats.flops += 4.0 * n
        return stats, launch


class TrailLimitsUpdate(UpdatePolicy):
    """MMAS rule: evaporate, deposit one tour, clamp to ``[tau_min, tau_max]``.

    Per iteration only one ant deposits — the iteration best, or (every
    ``use_best_so_far_every``-th iteration) the best-so-far tour.  Limits
    follow the best-so-far length (``tau_max = 1 / (rho C_best)``,
    ``tau_min = tau_max / (divisor n)``) and trails start optimistically at
    the ``tau_max`` derived from the greedy nearest-neighbour tour.  With
    ``reinit_branching`` set, rows whose mean λ-branching factor falls
    below the threshold have their trails reset to ``tau_max`` (stagnation
    escape); per-row reset counts are kept in ``reinit_count``.
    """

    key = "trail_limits"

    def __init__(
        self,
        mmas: MMASParams | None = None,
        reinit_branching: float | None = None,
    ) -> None:
        self.mmas = mmas or MMASParams()
        self.reinit_branching = reinit_branching
        self.tau_max: np.ndarray | None = None  # (B,) device float64
        self.tau_min: np.ndarray | None = None
        self.reinit_count: np.ndarray | None = None  # (B,) device int64

    def bind(self, bstate) -> None:
        bk = bstate.backend
        if bstate.c_nn is None:
            raise ACOConfigError(
                "MMAS trail limits need per-row nearest-neighbour tour "
                "lengths; build the batch state through BatchColonyState.create"
            )
        # Host math by design: c_nn is a host vector, result crosses the
        # seam via bk.from_host on the next line.
        rho = np.array([p.rho for p in bstate.params], dtype=np.float64)  # lint: ignore[backend-purity]
        tau_max = 1.0 / (rho * bstate.c_nn.astype(np.float64))
        self.tau_max = bk.from_host(tau_max).copy()
        self.tau_min = self.tau_max / (self.mmas.tau_min_divisor * bstate.n)
        self.reinit_count = bk.xp.zeros(bstate.B, dtype=np.int64)
        # Optimistic initialisation at tau_max.
        bstate.pheromone[...] = self.tau_max[:, None, None]
        diag = bk.xp.arange(bstate.n)
        bstate.pheromone[:, diag, diag] = 0.0

    def update_batch(self, bstate, pheromone, tours, lengths, ctx, collect):
        from repro.core.pheromone.base import evaporate_batch

        xp = bstate.backend.xp
        B, n = bstate.B, bstate.n
        assert self.tau_max is not None and self.tau_min is not None

        # Limits follow a freshly improved best-so-far (the solo loop's
        # _set_limits call after record_tours).  Masked math instead of an
        # index gate: no host sync inside the device-resident K-loop, and
        # bit-identical — unimproved rows keep their tau_max verbatim, and
        # tau_min recomputed from an unchanged tau_max reproduces the same
        # value (identical operands, deterministic divide).
        fresh_max = 1.0 / (bstate.rho * ctx.best_lengths.astype(np.float64))
        self.tau_max = xp.where(ctx.improved, fresh_max, self.tau_max)
        self.tau_min = self.tau_max / (self.mmas.tau_min_divisor * n)

        evaporate_batch(bstate)

        # Deposit schedule: iteration best, periodically best-so-far.
        k = self.mmas.use_best_so_far_every
        use_bsf = k > 0 and ctx.iteration % k == k - 1
        if use_bsf:
            dep_tours, dep_lengths = ctx.best_tours, ctx.best_lengths
        else:
            rows1 = xp.arange(B)
            dep_tours = tours[rows1, ctx.it_best]
            dep_lengths = ctx.it_best_lengths
        t = dep_tours.astype(np.int64)
        a, b = t[:, :-1], t[:, 1:]
        delta = 1.0 / dep_lengths.astype(np.float64)
        flat = bstate.pheromone.reshape(B, n * n)
        rows = xp.arange(B)[:, None]
        fw = a * n + b
        bw = b * n + a
        flat[rows, fw] += delta[:, None]
        flat[rows, bw] += delta[:, None]

        # Clamp into the per-row limits (diagonal stays 0).
        xp.clip(
            bstate.pheromone,
            self.tau_min[:, None, None],
            self.tau_max[:, None, None],
            out=bstate.pheromone,
        )
        diag = xp.arange(n)
        bstate.pheromone[:, diag, diag] = 0.0

        if self.reinit_branching is not None:
            self._maybe_reinitialise(bstate)

        if not collect:
            return []
        stats, launch = self.predict_stats(n, bstate.device)
        report = StageReport(
            stage="pheromone", kernel="mmas_update", stats=stats, launch=launch
        )
        return [report] * B

    # ------------------------------------------------------------ stagnation

    def branching_factors(self, bstate, lam: float = 0.05) -> np.ndarray:
        """Per-row mean λ-branching factor — the classical stagnation gauge.

        For each city, counts edges whose trail exceeds
        ``row_min + lam * (row_max - row_min)``; values near 2 mean the
        colony has converged onto a single tour.  Returns a backend ``(B,)``
        float64 vector.
        """
        xp = bstate.backend.xp
        n = bstate.n
        off = ~xp.eye(n, dtype=bool)
        rows = xp.where(off, bstate.pheromone, xp.nan)
        row_min = xp.nanmin(rows, axis=2, keepdims=True)
        row_max = xp.nanmax(rows, axis=2, keepdims=True)
        threshold = row_min + lam * (row_max - row_min)
        counts = xp.nansum(rows >= threshold, axis=2)
        return counts.mean(axis=1)

    def reinitialise(self, bstate, rows: np.ndarray | None = None) -> None:
        """Reset the given rows' trails to ``tau_max`` (all rows if None)."""
        xp = bstate.backend.xp
        assert self.tau_max is not None and self.reinit_count is not None
        # Host-side row indices by design (callers pass python/host lists);
        # shipped across the seam via backend.from_host below.
        if rows is None:
            rows = np.arange(bstate.B)  # lint: ignore[backend-purity]
        rows = np.asarray(rows, dtype=np.int64)  # lint: ignore[backend-purity]
        if rows.size == 0:
            return
        sel = bstate.backend.from_host(rows)
        bstate.pheromone[sel] = self.tau_max[sel][:, None, None]
        diag = xp.arange(bstate.n)
        bstate.pheromone[:, diag, diag] = 0.0
        self.reinit_count[sel] += 1

    def _maybe_reinitialise(self, bstate) -> None:
        """Masked stagnation reset, fully backend-resident.

        No host crossing inside the device-resident ``report_every=K``
        loop: the below-threshold mask selects between ``tau_max`` and the
        current trails elementwise (bit-identical to an indexed reset —
        unselected rows copy their own values), and the per-row reset
        counters accumulate on the backend; host transfer of the counts
        happens only when a view reads them.
        """
        # lint: hot-region
        xp = bstate.backend.xp
        assert self.tau_max is not None and self.reinit_count is not None
        low = self.branching_factors(bstate) < self.reinit_branching
        bstate.pheromone[...] = xp.where(
            low[:, None, None], self.tau_max[:, None, None], bstate.pheromone
        )
        diag = xp.arange(bstate.n)
        bstate.pheromone[:, diag, diag] = 0.0
        self.reinit_count += low

    def predict_stats(
        self, n: int, device: DeviceSpec
    ) -> tuple[KernelStats, LaunchConfig]:
        """Closed-form per-colony ledger mirroring the solo MMAS update."""
        stats = KernelStats()
        launch = LaunchConfig(grid=grid_for(n * n, 256), block=256)
        gmem = GlobalMemory(device, stats)
        cells = float(n) * n
        # Evaporation sweep (the dominant kernel: n^2 cells).
        Kernel.record_launch(stats, launch)
        gmem.load(cells, 4, AccessPattern.COALESCED)
        gmem.store(cells, 4, AccessPattern.COALESCED)
        stats.flops += cells
        # Single-tour deposit (one block).
        deposit_launch = LaunchConfig(
            grid=1, block=min(256, device.max_threads_per_block)
        )
        Kernel.record_launch(stats, deposit_launch)
        stats.atomics_fp += 2.0 * n
        gmem.load(float(n + 1), 4, AccessPattern.COALESCED)
        # Clamp kernel (fused in practice; counted as one more sweep).
        Kernel.record_launch(stats, launch)
        gmem.load(cells, 4, AccessPattern.COALESCED)
        gmem.store(cells, 4, AccessPattern.COALESCED)
        stats.flops += 2.0 * cells  # two compares per cell
        return stats, launch


# ---------------------------------------------------------------------------
# local-search policies
# ---------------------------------------------------------------------------

#: valid ``--ls-target`` spellings: which tours each boundary polish runs on
LS_TARGETS = ("iteration-best", "best-so-far")


class LocalSearchPolicy(abc.ABC):
    """Boundary-time tour polishing: the third seam of a variant.

    The engine invokes :meth:`improve` at ``report_every`` boundaries on
    one selected tour per batch row (the iteration best or the best so
    far, per :attr:`target`) and folds improvements into the
    backend-resident best-so-far records *before* the update seam — so
    best-so-far deposits (ACS global-best, MMAS schedules) spread the
    improved edges, which is what makes local search the quality lever the
    ACOTSP/GPU-follow-up literature says it is.
    """

    key: str = ""
    enabled: bool = True
    target: str = "iteration-best"

    def bind(self, bstate) -> None:
        """Initialise per-engine state."""

    @abc.abstractmethod
    def improve(self, bstate, tours, lengths):
        """Polish ``(B, n + 1)`` tours; returns a
        :class:`~repro.tsp.local_search.BatchTwoOptResult` with fresh
        ``tours``/``lengths``/``exchanges`` arrays on the backend."""


class NoLocalSearch(LocalSearchPolicy):
    """The default: construction-only, exactly the pre-seam engine."""

    key = "none"
    enabled = False

    def improve(self, bstate, tours, lengths):  # pragma: no cover
        raise ACOConfigError("NoLocalSearch has no improve step")


class BatchedTwoOpt(LocalSearchPolicy):
    """nn-restricted batched best-improvement 2-opt (ACOTSP candidate lists).

    Runs :func:`~repro.tsp.local_search.two_opt_batch` over all B selected
    tours at once through the engine's backend/arena, restricted to the
    candidate lists the construction already built (``bstate.nn_list``).
    ``passes`` caps the lockstep improvement rounds per boundary (``None``
    runs each tour to 2-opt optimality over the nn neighbourhood).
    """

    key = "2opt"

    def __init__(
        self, passes: int | None = None, target: str = "iteration-best"
    ) -> None:
        if passes is not None and passes < 1:
            raise ACOConfigError(f"local-search passes must be >= 1, got {passes}")
        if target not in LS_TARGETS:
            raise ACOConfigError(
                f"unknown ls target {target!r}; valid: {list(LS_TARGETS)}"
            )
        self.passes = passes
        self.target = target

    def improve(self, bstate, tours, lengths):
        from repro.tsp.local_search import two_opt_batch

        return two_opt_batch(
            tours,
            bstate.dist,
            nn_list=bstate.nn_list,
            lengths=lengths,
            max_passes=self.passes,
            xp=bstate.backend.xp,
            work=bstate.work,
        )


#: registered local-search policies, keyed as the CLI / serve protocol
#: spell them
LOCAL_SEARCH = {"none": NoLocalSearch, "2opt": BatchedTwoOpt}


def make_local_search(
    which: str | LocalSearchPolicy, **options
) -> LocalSearchPolicy:
    """Instantiate a local-search policy by key (``"none" | "2opt"``).

    Mirrors :func:`make_variant`: a ready-made policy passes through
    unchanged (options must then be empty), keyword options go to the
    policy constructor — ``make_local_search("2opt", passes=2,
    target="best-so-far")``.
    """
    if isinstance(which, LocalSearchPolicy):
        if options:
            raise ACOConfigError(
                "options cannot be combined with a local-search instance"
            )
        return which
    try:
        cls = LOCAL_SEARCH[which]
    except (KeyError, TypeError):
        raise ACOConfigError(
            f"unknown local search {which!r}; valid: {sorted(LOCAL_SEARCH)}"
        ) from None
    if cls is NoLocalSearch and options:
        raise ACOConfigError(
            "local-search options require an algorithm (got 'none' with "
            f"options {sorted(options)})"
        )
    return cls(**options)


# ---------------------------------------------------------------------------
# variant composition
# ---------------------------------------------------------------------------


class VariantStrategy:
    """One choice policy + one update policy (+ optional local search) =
    one ACO variant.

    Instances are **per-engine**: the policies carry per-row device arrays
    (ACS ``tau0``, MMAS trail limits) installed by :meth:`bind` and must
    not be shared between engines.  Build through :func:`make_variant`;
    the engine installs the local-search policy from its own
    ``local_search=`` argument (every variant composes with every policy).
    """

    def __init__(
        self,
        key: str,
        label: str,
        choice: ChoicePolicy,
        update: UpdatePolicy,
        local: LocalSearchPolicy | None = None,
    ) -> None:
        self.key = key
        self.label = label
        self.choice = choice
        self.update = update
        self.local = local if local is not None else NoLocalSearch()

    def bind(self, bstate) -> None:
        """Install variant state on a freshly created batch state."""
        self.choice.bind(bstate)
        self.update.bind(bstate)
        self.local.bind(bstate)

    def span_labels(self) -> dict[str, str]:
        """Trace-span names for the engine phases this variant owns — the
        policy key rides along (``construct:roulette``,
        ``update:trail_limits``, ``local-search:2opt``) so a chrome-trace
        timeline names the kernel, not just the phase family."""
        return {
            "construct": f"construct:{self.choice.key}",
            "update": f"update:{self.update.key}",
            "local-search": f"local-search:{self.local.key}",
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        parts = f"{type(self.choice).__name__} + {type(self.update).__name__}"
        if self.local.enabled:
            parts += f" + {type(self.local).__name__}"
        return f"<VariantStrategy {self.key!r}: {parts}>"


def _make_as() -> VariantStrategy:
    return VariantStrategy(
        "as", "Ant System", RouletteChoice(), DepositAllUpdate()
    )


def _make_acs(acs: ACSParams | None = None, **knobs) -> VariantStrategy:
    if acs is not None and knobs:
        raise ACOConfigError("pass either acs=ACSParams(...) or q0/xi knobs, not both")
    return VariantStrategy(
        "acs",
        "Ant Colony System",
        PseudoProportionalChoice(acs or ACSParams(**knobs)),
        GlobalBestUpdate(),
    )


def _make_mmas(
    mmas: MMASParams | None = None,
    reinit_branching: float | None = None,
    **knobs,
) -> VariantStrategy:
    if mmas is not None and knobs:
        raise ACOConfigError(
            "pass either mmas=MMASParams(...) or schedule knobs, not both"
        )
    return VariantStrategy(
        "mmas",
        "MAX-MIN Ant System",
        RouletteChoice(),
        TrailLimitsUpdate(mmas or MMASParams(**knobs), reinit_branching),
    )


#: registered variant factories, keyed as the CLI / serve protocol spell them
VARIANTS = {
    "as": _make_as,
    "acs": _make_acs,
    "mmas": _make_mmas,
}


def make_variant(which: str | VariantStrategy, **options) -> VariantStrategy:
    """Instantiate a variant strategy by key (``"as" | "acs" | "mmas"``).

    A ready-made :class:`VariantStrategy` passes through unchanged (options
    must then be empty).  Keyword options go to the variant's parameter
    dataclass: ``make_variant("acs", q0=0.95)``,
    ``make_variant("mmas", mmas=MMASParams(...), reinit_branching=2.05)``.
    """
    if isinstance(which, VariantStrategy):
        if options:
            raise ACOConfigError(
                "options cannot be combined with a variant instance"
            )
        return which
    try:
        factory = VARIANTS[which]
    except (KeyError, TypeError):
        raise ACOConfigError(
            f"unknown variant {which!r}; valid: {sorted(VARIANTS)}"
        ) from None
    return factory(**options)
