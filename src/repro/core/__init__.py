"""Core library: the paper's GPU Ant System.

Composes the SIMT substrate (:mod:`repro.simt`), the TSP substrate
(:mod:`repro.tsp`) and the RNG substrate (:mod:`repro.rng`) into the full
algorithm: eight tour-construction kernels (Table II), five pheromone-update
kernels (Tables III/IV), the Choice kernel, and the :class:`AntSystem`
orchestrator.
"""

from __future__ import annotations

from repro.core.acs import ACSParams, ACSRunResult, AntColonySystem
from repro.core.batch import (
    BatchColonyState,
    BatchEngine,
    BatchRunResult,
    BoundaryUpdate,
)
from repro.core.checkpoint import (
    EngineCheckpoint,
    capture_checkpoint,
    engine_fingerprint,
    load_checkpoint,
    restore_engine,
    save_checkpoint,
)
from repro.core.mmas import MaxMinAntSystem, MMASParams, MMASRunResult
from repro.core.choice import ChoiceKernel
from repro.core.colony import AntSystem, RunResult
from repro.core.construction import (
    CONSTRUCTION_VERSIONS,
    TourConstruction,
    make_construction,
)
from repro.core.params import ACOParams
from repro.core.pheromone import PHEROMONE_VERSIONS, PheromoneUpdate, make_pheromone
from repro.core.reference import ReferenceAntColonySystem, ReferenceMaxMinAntSystem
from repro.core.report import IterationReport, StageReport
from repro.core.state import ColonyState
from repro.core.variant import (
    LOCAL_SEARCH,
    VARIANTS,
    VariantStrategy,
    make_local_search,
    make_variant,
)

__all__ = [
    "ACOParams",
    "ACSParams",
    "ACSRunResult",
    "AntColonySystem",
    "MaxMinAntSystem",
    "MMASParams",
    "MMASRunResult",
    "AntSystem",
    "RunResult",
    "BatchColonyState",
    "BatchEngine",
    "BatchRunResult",
    "BoundaryUpdate",
    "EngineCheckpoint",
    "capture_checkpoint",
    "engine_fingerprint",
    "load_checkpoint",
    "restore_engine",
    "save_checkpoint",
    "ColonyState",
    "ChoiceKernel",
    "TourConstruction",
    "PheromoneUpdate",
    "StageReport",
    "IterationReport",
    "CONSTRUCTION_VERSIONS",
    "PHEROMONE_VERSIONS",
    "VARIANTS",
    "VariantStrategy",
    "ReferenceAntColonySystem",
    "ReferenceMaxMinAntSystem",
    "make_construction",
    "make_pheromone",
    "make_variant",
    "make_local_search",
    "LOCAL_SEARCH",
]
