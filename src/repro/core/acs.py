"""Ant Colony System (ACS) — the paper's named future-work variant.

The conclusions promise: "We will also implement other ACO algorithms, such
as the Ant Colony System, which can also be efficiently implemented on the
GPU."  This module delivers that extension on the same substrates.  ACS
(Dorigo & Gambardella, 1997) modifies the Ant System in three ways:

1. **Pseudo-random-proportional rule**: with probability ``q0`` an ant moves
   greedily to the best-``choice_info`` candidate; otherwise it applies the
   usual proportional rule.  On the GPU this maps perfectly onto the paper's
   data-parallel selection — the greedy branch is the same block-wide argmax
   *without* the random weighting.
2. **Local pheromone update**: immediately after crossing an edge, an ant
   decays it toward ``tau0``: ``tau <- (1 - xi) tau + xi tau0`` — making
   edges less attractive for the ants behind it (diversification).  On the
   GPU this is one more atomic-ish write per step per ant.
3. **Global update on the best tour only**: after the iteration, only the
   best-so-far ant deposits, with simultaneous decay restricted to its own
   edges: ``tau <- (1 - rho) tau + rho / C_bs`` on best-tour edges.

The implementation is vectorised across ants (all ants advance one step per
inner iteration).  Local updates within one step are applied once per
*unique* directed edge, matching a GPU execution where colliding same-step
writers are idempotent decays toward the same target; this deviation from
strict per-ant sequencing is noted in DESIGN.md and is irrelevant once ants
spread out (they rarely share an edge in the same step).

The modeled kernel cost reuses the data-parallel construction ledger with
the extra local-update traffic and the (tiny) best-only global update.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.params import ACOParams
from repro.core.report import StageReport
from repro.core.state import ColonyState
from repro.errors import ACOConfigError, RunInterrupted
from repro.rng import ParkMillerLCG
from repro.simt.counters import KernelStats
from repro.simt.device import TESLA_M2050, DeviceSpec
from repro.simt.kernel import Kernel, LaunchConfig
from repro.simt.memory import AccessPattern, GlobalMemory
from repro.tsp.instance import TSPInstance
from repro.tsp.tour import tour_lengths, validate_tour
from repro.util.timer import WallClock

__all__ = ["ACSParams", "AntColonySystem", "ACSRunResult"]


def require_numpy_backend(backend, variant: str) -> None:
    """Reject non-numpy backends for the solo ACS/MMAS paths — loudly.

    These variants run the pre-batching solo numpy pipeline; accepting a
    ``backend=`` argument and then ignoring it would silently drift from
    what the caller asked for (the stranded-variant bug).  ``None`` (the
    resolved default) and numpy itself are fine; anything else raises a
    clear :class:`~repro.errors.ACOConfigError`.
    """
    if backend is None:
        return
    name = backend if isinstance(backend, str) else getattr(backend, "name", None)
    if name is None:
        raise ACOConfigError(
            f"{variant} cannot interpret backend {backend!r}; pass a name or "
            "an ArrayBackend"
        )
    if name != "numpy":
        raise ACOConfigError(
            f"{variant} runs on the solo numpy path; backend {name!r} is not "
            "supported — use the Ant System variant (AntSystem/BatchEngine) "
            "for backend-resident execution"
        )


@dataclass(frozen=True)
class ACSParams:
    """ACS-specific parameters on top of :class:`~repro.core.params.ACOParams`.

    Attributes
    ----------
    q0:
        Exploitation probability of the pseudo-random-proportional rule
        (Dorigo & Gambardella recommend 0.9).
    xi:
        Local-update decay in (0, 1] (classically 0.1).
    """

    q0: float = 0.9
    xi: float = 0.1

    def __post_init__(self) -> None:
        if not 0.0 <= self.q0 <= 1.0:
            raise ACOConfigError(f"q0 must lie in [0, 1], got {self.q0}")
        if not 0.0 < self.xi <= 1.0:
            raise ACOConfigError(f"xi must lie in (0, 1], got {self.xi}")


@dataclass
class ACSRunResult:
    """Summary of an ACS run."""

    best_tour: np.ndarray
    best_length: int
    iteration_best_lengths: list[int]
    wall_seconds: float


class AntColonySystem(Kernel):
    """GPU-simulated ACS for the symmetric TSP.

    Parameters
    ----------
    instance:
        TSP instance.
    params:
        Base AS parameters (alpha is conventionally 1 in ACS; rho is the
        global-update strength).
    acs:
        The ACS-specific knobs (q0, xi).
    device:
        Simulated device for the cost ledgers.
    backend:
        Accepted for CLI/API symmetry with :class:`~repro.core.AntSystem`,
        but the solo ACS path runs numpy only: any non-numpy value raises
        :class:`~repro.errors.ACOConfigError` instead of being silently
        ignored.

    Examples
    --------
    >>> from repro.tsp import uniform_instance
    >>> acs = AntColonySystem(uniform_instance(30, seed=2))
    >>> res = acs.run(iterations=5)
    >>> res.best_length > 0
    True
    """

    name = "acs"

    def __init__(
        self,
        instance: TSPInstance,
        params: ACOParams | None = None,
        acs: ACSParams | None = None,
        device: DeviceSpec = TESLA_M2050,
        backend=None,
    ) -> None:
        require_numpy_backend(backend, "AntColonySystem")
        self.params = params or ACOParams()
        self.acs = acs or ACSParams()
        self.device = device
        # Pin numpy explicitly: with backend=None the state/RNG would
        # otherwise resolve ACO_BACKEND themselves and an env-selected
        # accelerated backend would drift into this numpy-only path.
        self.state = ColonyState.create(
            instance, self.params, device, backend="numpy"
        )
        # ACS tau0 = 1 / (n * C_nn); reuse the AS state's m/C_nn scaling.
        self.tau0 = self.state.tau0 / (self.state.m * self.state.n)
        self.state.pheromone[:, :] = self.tau0
        np.fill_diagonal(self.state.pheromone, 0.0)
        self.rng = ParkMillerLCG(
            n_streams=max(self.state.m * 2, 2),
            seed=self.params.seed,
            backend="numpy",
        )

    # ------------------------------------------------------------- geometry

    def launch_config(self, device: DeviceSpec, **problem) -> LaunchConfig:
        m = problem.get("m", self.state.m)
        theta = min(256, device.max_threads_per_block)
        return LaunchConfig(grid=m, block=theta, smem_per_block=8 * theta)

    # ----------------------------------------------------------- iteration

    def _choice_info(self) -> np.ndarray:
        p = self.params
        choice = np.power(self.state.pheromone, p.alpha) * np.power(
            self.state.eta, p.beta
        )
        np.fill_diagonal(choice, 0.0)
        return choice

    def construct(self) -> tuple[np.ndarray, StageReport]:
        """One ACS construction pass with per-step local updates."""
        st = self.state
        n, m = st.n, st.m
        choice = self._choice_info()
        tau = st.pheromone
        xi, q0 = self.acs.xi, self.acs.q0

        stats = KernelStats()
        launch = self.launch_config(self.device, n=n, m=m)
        self.record_launch(stats, launch)
        gmem = GlobalMemory(self.device, stats)

        ant_idx = np.arange(m)
        tours = np.empty((m, n + 1), dtype=np.int32)
        visited = np.zeros((m, n), dtype=bool)

        u = self.rng.uniform()
        start = np.minimum((u[:m] * n).astype(np.int64), n - 1)
        stats.rng_lcg += m
        tours[:, 0] = start
        visited[ant_idx, start] = True
        cur = start

        for step in range(1, n):
            w = np.where(visited, 0.0, choice[cur])  # (m, n)
            gmem.load(float(m) * n, 4, AccessPattern.COALESCED)
            stats.flops += 2.0 * m * n
            stats.int_ops += 2.0 * m * n

            u = self.rng.uniform()
            explore_dart, roulette_dart = u[:m], u[m : 2 * m]
            stats.rng_lcg += 2.0 * m

            greedy = np.argmax(w, axis=1)
            sums = w.sum(axis=1)
            cum = np.cumsum(w, axis=1)
            r = roulette_dart * sums
            roulette = np.minimum((cum < r[:, None]).sum(axis=1), n - 1)
            nxt = np.where(explore_dart < q0, greedy, roulette)
            stats.flops += float(m) * n  # argmax scan
            stats.smem_accesses += float(m) * n

            # Local pheromone update on the crossed edges (both directions);
            # unique directed edges per step (see module docstring).
            edges = np.unique(np.stack([cur, nxt], axis=1), axis=0)
            a, b = edges[:, 0], edges[:, 1]
            tau[a, b] = (1.0 - xi) * tau[a, b] + xi * self.tau0
            tau[b, a] = tau[a, b]
            stats.atomics_fp += 2.0 * m  # modeled: every ant writes its edge
            gmem.load(2.0 * m, 4, AccessPattern.RANDOM)

            visited[ant_idx, nxt] = True
            tours[:, step] = nxt
            cur = nxt

        tours[:, n] = tours[:, 0]
        report = StageReport(
            stage="construction", kernel=self.name, stats=stats, launch=launch
        )
        return tours, report

    def global_update(self) -> StageReport:
        """Best-so-far-only deposit: ``tau <- (1-rho) tau + rho/C_bs``."""
        st = self.state
        assert st.best_tour is not None and st.best_length is not None
        stats = KernelStats()
        launch = LaunchConfig(grid=max(1, st.n // 256 + 1), block=256)
        self.record_launch(stats, launch)

        rho = self.params.rho
        best = st.best_tour.astype(np.int64)
        a, b = best[:-1], best[1:]
        deposit = rho / float(st.best_length)
        st.pheromone[a, b] = (1.0 - rho) * st.pheromone[a, b] + deposit
        st.pheromone[b, a] = st.pheromone[a, b]

        gmem = GlobalMemory(self.device, stats)
        gmem.load(2.0 * st.n, 4, AccessPattern.RANDOM)
        gmem.store(2.0 * st.n, 4, AccessPattern.RANDOM)
        stats.flops += 4.0 * st.n
        return StageReport(stage="pheromone", kernel="acs_global", stats=stats, launch=launch)

    def run_iteration(self) -> tuple[int, list[StageReport]]:
        """One ACS iteration; returns (iteration best length, stage reports)."""
        tours, construction_report = self.construct()
        lengths = tour_lengths(tours, self.state.dist)
        self.state.record_tours(tours, lengths)
        update_report = self.global_update()
        self.state.iteration += 1
        return int(lengths.min()), [construction_report, update_report]

    def run(self, iterations: int, report_every: int = 1) -> ACSRunResult:
        """Run several ACS iterations, tracking the best tour.

        ``report_every`` exists for signature symmetry with
        :meth:`AntSystem.run <repro.core.colony.AntSystem.run>` but the
        solo ACS loop has no amortized path; any value other than 1 raises
        instead of being silently ignored.  Ctrl-C raises
        :class:`~repro.errors.RunInterrupted` carrying the best-so-far
        :class:`ACSRunResult` (bare ``KeyboardInterrupt`` when nothing
        completed).
        """
        if iterations < 1:
            raise ACOConfigError(f"iterations must be >= 1, got {iterations}")
        if report_every != 1:
            raise ACOConfigError(
                "report_every > 1 needs the device-resident batched loop; "
                "the solo ACS path reports every iteration (use the Ant "
                "System variant for amortized execution)"
            )
        bests: list[int] = []
        clock = WallClock()
        try:
            with clock:
                for _ in range(iterations):
                    best, _ = self.run_iteration()
                    bests.append(best)
        except KeyboardInterrupt:
            st = self.state
            if st.best_tour is None or st.best_length is None:
                raise
            partial = ACSRunResult(
                best_tour=st.best_tour,
                best_length=st.best_length,
                iteration_best_lengths=bests,
                wall_seconds=clock.elapsed,
            )
            raise RunInterrupted(partial, "ACS run interrupted") from None
        st = self.state
        assert st.best_tour is not None and st.best_length is not None
        validate_tour(st.best_tour, st.n)
        return ACSRunResult(
            best_tour=st.best_tour,
            best_length=st.best_length,
            iteration_best_lengths=bests,
            wall_seconds=clock.elapsed,
        )
