"""Ant Colony System (ACS) — the paper's named future-work variant.

The conclusions promise: "We will also implement other ACO algorithms, such
as the Ant Colony System, which can also be efficiently implemented on the
GPU."  Since the variant redesign, ACS runs on the batched
:class:`~repro.core.batch.BatchEngine` through the pluggable
:class:`~repro.core.variant.VariantStrategy` seams: the
pseudo-random-proportional choice policy (greedy with probability ``q0``
plus per-step local evaporation toward ``tau0``) and the global-best-only
update policy.  That puts ACS on every fast path the Ant System has —
replica batching, parameter sweeps, array backends, the amortized
``report_every=K`` loop and the micro-batching solve service.

:class:`AntColonySystem` here is the ``B = 1`` view of the engine (exactly
as :class:`~repro.core.colony.AntSystem` is for AS); the pre-redesign solo
loop is retained verbatim as
:class:`~repro.core.reference.ReferenceAntColonySystem`, the parity oracle
``tests/property/test_variant_parity.py`` pins the engine against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.batch import BatchEngine
from repro.core.colony import run_engine_view
from repro.core.params import ACOParams
from repro.core.variant import ACSParams
from repro.simt.device import TESLA_M2050, DeviceSpec
from repro.tsp.instance import TSPInstance
from repro.tsp.tour import validate_tour

__all__ = ["ACSParams", "AntColonySystem", "ACSRunResult"]


@dataclass
class ACSRunResult:
    """Summary of an ACS run."""

    best_tour: np.ndarray
    best_length: int
    iteration_best_lengths: list[int]
    wall_seconds: float


class AntColonySystem:
    """GPU-simulated ACS for the symmetric TSP — the engine's B=1 ACS view.

    Parameters
    ----------
    instance:
        TSP instance.
    params:
        Base AS parameters (alpha is conventionally 1 in ACS; rho is the
        global-update strength).
    acs:
        The ACS-specific knobs (q0, xi).
    device:
        Simulated device for the cost ledgers.
    backend:
        Array backend the iteration kernels execute on — a name
        (``"numpy"``, ``"cupy"``), an
        :class:`~repro.backend.ArrayBackend` instance, or ``None`` to
        resolve ``ACO_BACKEND`` / the numpy default.

    Examples
    --------
    >>> from repro.tsp import uniform_instance
    >>> acs = AntColonySystem(uniform_instance(30, seed=2))
    >>> res = acs.run(iterations=5)
    >>> res.best_length > 0
    True
    """

    name = "acs"

    def __init__(
        self,
        instance: TSPInstance,
        params: ACOParams | None = None,
        acs: ACSParams | None = None,
        device: DeviceSpec = TESLA_M2050,
        backend=None,
    ) -> None:
        self.params = params or ACOParams()
        self.acs = acs or ACSParams()
        self.device = device
        self.engine = BatchEngine(
            instance,
            self.params,
            device=device,
            backend=backend,
            variant="acs",
            variant_options={"acs": self.acs},
        )
        self.backend = self.engine.backend
        self.state = self.engine.state.colony_view(0)
        #: the ACS trail floor ``1 / (n * C_nn)`` (local updates decay
        #: toward it; the pheromone stack starts there)
        self.tau0 = float(
            self.backend.to_host(self.engine.variant.choice.tau0)[0]
        )

    # ------------------------------------------------------------ iteration

    def run_iteration(self) -> tuple[int, list]:
        """One ACS iteration; returns (iteration best length, stage reports)."""
        report = self.engine.run_iteration()[0]
        self._sync_view()
        return int(report.lengths.min()), report.stages

    def _sync_view(self) -> None:
        """Mirror the batch row's outputs into the ``self.state`` view."""
        self.engine.state.sync_colony_view(self.state)

    def run(self, iterations: int, report_every: int = 1) -> ACSRunResult:
        """Run several ACS iterations, tracking the best tour.

        ``report_every=K`` runs the engine's amortized device-resident
        loop — host transfers only at K-boundaries, bit-identical results
        for every K.  Ctrl-C raises
        :class:`~repro.errors.RunInterrupted` carrying the best-so-far
        :class:`ACSRunResult` (bare ``KeyboardInterrupt`` when nothing
        completed).
        """

        def wrap(row, wall_seconds: float) -> ACSRunResult:
            return ACSRunResult(
                best_tour=row.best_tour,
                best_length=row.best_length,
                iteration_best_lengths=row.iteration_best_lengths,
                wall_seconds=wall_seconds,
            )

        result = run_engine_view(
            self.engine, iterations, report_every, wrap,
            "ACS run interrupted", self._sync_view,
        )
        validate_tour(result.best_tour, self.state.n)
        return result
