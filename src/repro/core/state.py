"""Colony state: the device-resident data of a GPU Ant System run.

One :class:`ColonyState` owns every array the kernels touch — distance and
heuristic matrices, the pheromone matrix, ``choice_info``, candidate lists —
plus the iteration-level bookkeeping (last tours, best tour so far).  The
construction and pheromone strategies mutate it; the colony orchestrates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.backend import ArrayBackend, WorkBuffers, resolve_backend
from repro.core.params import ACOParams
from repro.simt.device import DeviceSpec
from repro.tsp.instance import TSPInstance
from repro.tsp.tour import nearest_neighbor_tour, tour_length

__all__ = ["ColonyState"]


@dataclass
class ColonyState:
    """All device-resident data for one Ant System run.

    Build with :meth:`create`, which derives every array from the instance
    and parameters the way ACOTSP does (``tau0 = m / C_nn`` etc.).
    """

    instance: TSPInstance
    params: ACOParams
    device: DeviceSpec
    n: int
    m: int
    nn: int
    dist: np.ndarray  # (n, n) int64 distances
    eta: np.ndarray  # (n, n) float64 heuristic 1/(d + shift)
    pheromone: np.ndarray  # (n, n) float64 tau
    nn_list: np.ndarray  # (n, nn) int32 candidate lists
    tau0: float
    #: array substrate the per-colony arrays live on (numpy by default)
    backend: ArrayBackend = field(default_factory=resolve_backend)
    #: scratch arena hoisting kernel buffers across steps and iterations
    #: (``None`` = allocate per call, the pre-amortisation behaviour)
    work: WorkBuffers | None = field(default=None, repr=False)
    #: pregenerate each iteration's RNG draws in bulk (bit-identical to
    #: per-step draws; ``False`` is the benchmark baseline mode)
    bulk_rng: bool = True
    choice_info: np.ndarray | None = None  # (n, n) float64, refreshed per iter
    tours: np.ndarray | None = None  # (m, n + 1) int32, last iteration
    lengths: np.ndarray | None = None  # (m,) int64, last iteration
    iteration: int = 0
    best_tour: np.ndarray | None = field(default=None, repr=False)
    best_length: int | None = None

    @classmethod
    def create(
        cls,
        instance: TSPInstance,
        params: ACOParams,
        device: DeviceSpec,
        backend: ArrayBackend | str | None = None,
    ) -> "ColonyState":
        """Initialise state the ACOTSP way.

        * ``eta = 1 / (d + eta_shift)``
        * ``tau0 = m / C_nn`` with ``C_nn`` the greedy nearest-neighbour tour
          length — every edge starts with the same pheromone.

        Derivations run on the host (they are one-time setup); the resident
        arrays are then uploaded through ``backend`` (no copy on numpy).
        """
        bk = resolve_backend(backend)
        n = instance.n
        m = params.resolve_ants(n)
        nn = params.resolve_nn(n)
        dist = instance.distance_matrix()
        eta = instance.heuristic_matrix(shift=params.eta_shift)
        c_nn = tour_length(nearest_neighbor_tour(dist), dist)
        tau0 = m / float(c_nn)
        pheromone = np.full((n, n), tau0, dtype=np.float64)
        np.fill_diagonal(pheromone, 0.0)
        return cls(
            instance=instance,
            params=params,
            device=device,
            n=n,
            m=m,
            nn=nn,
            dist=bk.from_host(dist),
            eta=bk.from_host(eta),
            pheromone=bk.from_host(pheromone),
            nn_list=bk.from_host(instance.nn_lists(nn)),
            tau0=tau0,
            backend=bk,
        )

    # ----------------------------------------------------------- bookkeeping

    def record_tours(self, tours: np.ndarray, lengths: np.ndarray) -> None:
        """Store the iteration's tours and update the best-so-far record."""
        self.tours = tours
        self.lengths = lengths
        best = int(np.argmin(lengths))
        if self.best_length is None or int(lengths[best]) < self.best_length:
            self.best_length = int(lengths[best])
            self.best_tour = tours[best].copy()

    @property
    def gpu_footprint_bytes(self) -> int:
        """Rough device-memory footprint of the resident arrays (4-byte GPU
        floats/ints, as the CUDA code would allocate them)."""
        n, m, nn = self.n, self.m, self.nn
        matrices = 4 * (4 * n * n)  # dist, eta, tau, choice_info
        lists = 4 * (n * nn)  # nn_list
        tours = 4 * (m * (n + 1))
        tabu = 4 * m * n
        return matrices + lists + tours + tabu
