"""Stage and iteration reports: what ran, what it did, what it would cost.

Every strategy returns a :class:`StageReport` per simulated GPU stage; the
colony aggregates them into an :class:`IterationReport`.  Reports separate
*facts* (the stats ledger, the launch shape) from *costing* (seconds under a
:class:`~repro.simt.timing.CostParams`), so one simulated run can be priced
for both paper devices.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.simt.counters import KernelStats
from repro.simt.device import DeviceSpec
from repro.simt.kernel import LaunchConfig
from repro.simt.timing import CostParams, estimate_time

__all__ = ["StageReport", "IterationReport", "cached_stage_reports"]


def cached_stage_reports(keys, build) -> list["StageReport"]:
    """Per-colony reports, building one per *distinct* key.

    ``build(key)`` must return the :class:`StageReport` for that key; rows
    with equal keys share the instance (ledgers are pure functions of the
    key plus the problem size, and nothing mutates a report downstream).
    """
    cache: dict = {}
    reports = []
    for key in keys:
        report = cache.get(key)
        if report is None:
            report = cache[key] = build(key)
        reports.append(report)
    return reports


@dataclass
class StageReport:
    """One simulated kernel stage (e.g. "tour construction, version 7").

    Attributes
    ----------
    stage:
        Stage family: ``"choice" | "construction" | "pheromone"``.
    kernel:
        Kernel/strategy name.
    stats:
        Work ledger (merged over the stage's launches).
    launch:
        The dominant launch shape (used for the occupancy derate).
    """

    stage: str
    kernel: str
    stats: KernelStats
    launch: LaunchConfig

    def effective_parallelism(self, device: DeviceSpec) -> float:
        return self.launch.occupancy(device).effective_parallelism

    def modeled_time(self, device: DeviceSpec, params: CostParams) -> float:
        """Estimated seconds of this stage on ``device`` under ``params``."""
        return estimate_time(
            self.stats,
            device,
            params,
            effective_parallelism=self.effective_parallelism(device),
        )


@dataclass
class IterationReport:
    """Everything one Ant System iteration produced."""

    iteration: int
    tours: np.ndarray
    lengths: np.ndarray
    stages: list[StageReport] = field(default_factory=list)
    #: 2-opt exchanges applied to this row at this report boundary (0 when
    #: the engine runs without local search)
    ls_exchanges: int = 0
    #: total tour-length gain those exchanges bought
    ls_gain: int = 0

    @property
    def best_length(self) -> int:
        return int(self.lengths.min())

    def stage(self, name: str) -> StageReport:
        """Look up a stage by family name; raises ``KeyError`` when absent."""
        for s in self.stages:
            if s.stage == name:
                return s
        raise KeyError(f"no stage {name!r} in iteration report; have "
                       f"{[s.stage for s in self.stages]}")

    def construction_time(
        self, device: DeviceSpec, params: CostParams, *, include_choice: bool = True
    ) -> float:
        """Modeled seconds of the construction stage (the paper's Table II
        rows include the choice kernel's cost where one is used)."""
        total = 0.0
        for s in self.stages:
            if s.stage == "construction" or (include_choice and s.stage == "choice"):
                total += s.modeled_time(device, params)
        return total

    def pheromone_time(self, device: DeviceSpec, params: CostParams) -> float:
        """Modeled seconds of the pheromone-update stage."""
        return sum(
            s.modeled_time(device, params) for s in self.stages if s.stage == "pheromone"
        )

    def total_time(self, device: DeviceSpec, params: CostParams) -> float:
        return sum(s.modeled_time(device, params) for s in self.stages)
