"""Task-based tour construction: Table II versions 1-3.

The "traditional" approach ported from the pre-2011 literature: **one CUDA
thread per ant**.  Each thread walks its ant through all ``n - 1``
construction steps, scanning every city at every step and applying the exact
random proportional rule (paper eq. 1).

The three versions differ only in data placement and RNG:

1. **Baseline** — recomputes ``tau^alpha * eta^beta`` for every candidate at
   every step (three scattered global loads and three SFU operations per
   candidate) and draws CURAND randoms.
2. **Choice kernel** — reads the per-iteration ``choice_info`` matrix
   instead (one scattered load per candidate; the Choice kernel's own n²
   cost is accounted separately and included in the stage total, as the
   paper's Table II does).
3. **Without CURAND** — swaps the library generator for the device-function
   LCG (the sequential code's ``ran01``), the paper's reported 10-20 % gain.

Modelling notes (see DESIGN.md): the kernels generate one random number per
*candidate* (this is what makes the CURAND-vs-LCG gap as large as Table II
shows; a one-dart-per-step kernel would see a negligible difference), but
functionally a single dart decides each step — the remaining draws are
wasted work, which the ledger charges faithfully.  Warp divergence from the
tabu checks — the paper's stated drawback of task-based parallelism — is
charged on a quarter of candidate evaluations.
"""

from __future__ import annotations

import numpy as np

from repro.core.construction.base import ConstructionResult, TourConstruction
from repro.core.report import StageReport
from repro.core.state import ColonyState
from repro.rng.streams import DeviceRNG
from repro.simt.counters import KernelStats
from repro.simt.device import DeviceSpec
from repro.simt.kernel import LaunchConfig, grid_for
from repro.simt.memory import AccessPattern, GlobalMemory

__all__ = [
    "BaselineTaskConstruction",
    "ChoiceKernelTaskConstruction",
    "DeviceRngTaskConstruction",
    "construct_exact",
]

#: threads per block for the task-based kernels (ants per block)
TASK_BLOCK = 128

#: fraction of candidate evaluations charged as divergent-branch executions
DIVERGENCE_FRACTION = 0.25

#: amortised extra scattered loads per candidate for the roulette walk
WALK_LOADS_PER_CAND = 0.5


def construct_exact(
    choice: np.ndarray,
    nn_list: np.ndarray | None,
    rng: DeviceRNG,
    m: int,
    n: int,
) -> tuple[np.ndarray, float]:
    """Exact random-proportional construction, vectorised across ants.

    This is the functional semantics shared by all task-based kernels
    (versions 1-6): ants are placed randomly, then each step applies the
    proportional rule over the candidate set — all cities (``nn_list is
    None``) or the nearest-neighbour list with a best-``choice`` fallback.

    Parameters
    ----------
    choice:
        ``(n, n)`` proportional weights (``tau^alpha * eta^beta``), zero
        diagonal, strictly positive elsewhere.
    nn_list:
        ``(n, nn)`` candidate lists or ``None`` for the full rule.
    rng:
        Per-ant streams; must have at least ``m`` streams.
    m, n:
        Ants and cities.

    Returns
    -------
    (tours, fallback_steps):
        ``(m, n + 1)`` closed ``int32`` tours; number of candidate-list
        exhaustion events (always 0.0 for the full rule).
    """
    ant_idx = np.arange(m)
    tours = np.empty((m, n + 1), dtype=np.int32)
    visited = np.zeros((m, n), dtype=bool)

    start = np.minimum((rng.uniform()[:m] * n).astype(np.int64), n - 1)
    tours[:, 0] = start
    visited[ant_idx, start] = True
    cur = start
    fallbacks = 0.0

    for step in range(1, n):
        darts = rng.uniform()[:m]
        if nn_list is None:
            w = np.where(visited, 0.0, choice[cur])
            sums = w.sum(axis=1)
            nxt = _roulette(w, sums, darts)
        else:
            cand = nn_list[cur]
            w = np.where(visited[ant_idx[:, None], cand], 0.0, choice[cur[:, None], cand])
            sums = w.sum(axis=1)
            nxt = np.empty(m, dtype=np.int64)
            alive = sums > 0.0
            rows = np.nonzero(alive)[0]
            if rows.size:
                pick = _roulette(w[rows], sums[rows], darts[rows])
                nxt[rows] = cand[rows, pick]
            dead = np.nonzero(~alive)[0]
            if dead.size:
                sub = np.where(visited[dead], -np.inf, choice[cur[dead]])
                nxt[dead] = np.argmax(sub, axis=1)
                fallbacks += float(dead.size)
        visited[ant_idx, nxt] = True
        tours[:, step] = nxt
        cur = nxt

    tours[:, n] = tours[:, 0]
    return tours, fallbacks


def _roulette(weights: np.ndarray, sums: np.ndarray, darts: np.ndarray) -> np.ndarray:
    """Row-wise roulette selection (rows must have positive mass)."""
    r = darts * sums
    cum = np.cumsum(weights, axis=1)
    idx = (cum < r[:, None]).sum(axis=1)
    return np.minimum(idx, weights.shape[1] - 1)


class _TaskBasedFull(TourConstruction):
    """Shared scaffolding for the full-scan task-based versions 1-3."""

    #: scattered 4-byte global loads per candidate evaluation
    loads_per_cand: float = 2.0
    #: SFU operations per candidate (version 1's on-the-fly heuristic)
    special_per_cand: float = 0.0
    #: plain float ops per candidate
    flops_per_cand: float = 2.0
    #: integer/address ops per candidate
    int_per_cand: float = 3.0

    def launch_config(self, device: DeviceSpec, *, m: int) -> LaunchConfig:
        block = min(TASK_BLOCK, device.max_threads_per_block)
        return LaunchConfig(grid=grid_for(m, block), block=block, regs_per_thread=24)

    def build(self, state: ColonyState, rng: DeviceRNG) -> ConstructionResult:
        choice = self._choice_matrix(state)
        tours, fallbacks = construct_exact(choice, None, rng, state.m, state.n)
        stats, launch = self.predict_stats(
            state.n, state.m, state.nn, state.device, fallback_steps=fallbacks
        )
        report = StageReport(
            stage="construction", kernel=self.key, stats=stats, launch=launch
        )
        return ConstructionResult(tours=tours, report=report, fallback_steps=fallbacks)

    def _choice_matrix(self, state: ColonyState) -> np.ndarray:
        """Weights used by the proportional rule (versions 2-3 read
        ``choice_info``; version 1 overrides to recompute on the fly)."""
        self._validate_state(state)
        assert state.choice_info is not None
        return state.choice_info

    def predict_stats(
        self,
        n: int,
        m: int,
        nn: int,
        device: DeviceSpec,
        *,
        fallback_steps: float = 0.0,
    ) -> tuple[KernelStats, LaunchConfig]:
        stats = KernelStats()
        launch = self.launch_config(device, m=m)
        self.record_launch(stats, launch)

        cands = float(m) * (n - 1) * n
        gmem = GlobalMemory(device, stats)
        gmem.load(
            (self.loads_per_cand + WALK_LOADS_PER_CAND) * cands,
            4,
            AccessPattern.RANDOM,
        )
        gmem.store(float(m) * n, 4, AccessPattern.RANDOM)  # tour writes
        stats.special_ops += self.special_per_cand * cands
        stats.flops += self.flops_per_cand * cands
        stats.int_ops += self.int_per_cand * cands
        stats.divergent_branches += DIVERGENCE_FRACTION * cands
        samples = cands + m  # one per candidate + initial placement
        if self.rng_kind == "curand":
            stats.rng_curand += samples
        else:
            stats.rng_lcg += samples
        return stats, launch


class BaselineTaskConstruction(_TaskBasedFull):
    """Version 1 — task-based baseline with redundant heuristic computation.

    Per candidate: scattered loads of ``tau`` and ``d`` plus the tabu flag,
    two ``powf`` and a divide on the SFU path, CURAND randoms.
    """

    version = 1
    key = "task_baseline"
    label = "Baseline Version"
    needs_choice_info = False
    rng_kind = "curand"

    loads_per_cand = 3.0  # tau, dist, tabu — all scattered
    special_per_cand = 3.0  # 2 powf + 1 divide (eta = 1/d)
    flops_per_cand = 3.0
    int_per_cand = 3.0

    def _choice_matrix(self, state: ColonyState) -> np.ndarray:
        # Functionally identical to the on-the-fly computation; the *cost*
        # of recomputation is charged per candidate in predict_stats.
        p = state.params
        w = np.power(state.pheromone, p.alpha) * np.power(state.eta, p.beta)
        np.fill_diagonal(w, 0.0)
        return w


class ChoiceKernelTaskConstruction(_TaskBasedFull):
    """Version 2 — adds the Choice kernel; ants read ``choice_info``."""

    version = 2
    key = "task_choice"
    label = "Choice Kernel"
    needs_choice_info = True
    rng_kind = "curand"

    loads_per_cand = 2.0  # choice_info + tabu


class DeviceRngTaskConstruction(_TaskBasedFull):
    """Version 3 — version 2 with the device-function LCG instead of CURAND."""

    version = 3
    key = "task_lcg"
    label = "Without CURAND"
    needs_choice_info = True
    rng_kind = "lcg"

    loads_per_cand = 2.0
