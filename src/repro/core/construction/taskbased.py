"""Task-based tour construction: Table II versions 1-3.

The "traditional" approach ported from the pre-2011 literature: **one CUDA
thread per ant**.  Each thread walks its ant through all ``n - 1``
construction steps, scanning every city at every step and applying the exact
random proportional rule (paper eq. 1).

The three versions differ only in data placement and RNG:

1. **Baseline** — recomputes ``tau^alpha * eta^beta`` for every candidate at
   every step (three scattered global loads and three SFU operations per
   candidate) and draws CURAND randoms.
2. **Choice kernel** — reads the per-iteration ``choice_info`` matrix
   instead (one scattered load per candidate; the Choice kernel's own n²
   cost is accounted separately and included in the stage total, as the
   paper's Table II does).
3. **Without CURAND** — swaps the library generator for the device-function
   LCG (the sequential code's ``ran01``), the paper's reported 10-20 % gain.

Modelling notes (see DESIGN.md): the kernels generate one random number per
*candidate* (this is what makes the CURAND-vs-LCG gap as large as Table II
shows; a one-dart-per-step kernel would see a negligible difference), but
functionally a single dart decides each step — the remaining draws are
wasted work, which the ledger charges faithfully.  Warp divergence from the
tabu checks — the paper's stated drawback of task-based parallelism — is
charged on a quarter of candidate evaluations.
"""

from __future__ import annotations

import numpy as np

from repro.core.construction.base import (
    BatchConstructionResult,
    ConstructionResult,
    TourConstruction,
)
from repro.core.report import StageReport
from repro.core.state import ColonyState
from repro.rng.streams import DeviceRNG
from repro.simt.counters import KernelStats
from repro.simt.device import DeviceSpec
from repro.simt.kernel import LaunchConfig, grid_for
from repro.simt.memory import AccessPattern, GlobalMemory

__all__ = [
    "BaselineTaskConstruction",
    "ChoiceKernelTaskConstruction",
    "DeviceRngTaskConstruction",
    "construct_exact",
    "construct_exact_batch",
]

#: threads per block for the task-based kernels (ants per block)
TASK_BLOCK = 128

#: fraction of candidate evaluations charged as divergent-branch executions
DIVERGENCE_FRACTION = 0.25

#: amortised extra scattered loads per candidate for the roulette walk
WALK_LOADS_PER_CAND = 0.5


def construct_exact(
    choice: np.ndarray,
    nn_list: np.ndarray | None,
    rng: DeviceRNG,
    m: int,
    n: int,
    xp=np,
    work=None,
    bulk_rng: bool = True,
) -> tuple[np.ndarray, float]:
    """Exact random-proportional construction, vectorised across ants.

    This is the functional semantics shared by all task-based kernels
    (versions 1-6): ants are placed randomly, then each step applies the
    proportional rule over the candidate set — all cities (``nn_list is
    None``) or the nearest-neighbour list with a best-``choice`` fallback.

    Parameters
    ----------
    choice:
        ``(n, n)`` proportional weights (``tau^alpha * eta^beta``), zero
        diagonal, strictly positive elsewhere.
    nn_list:
        ``(n, nn)`` candidate lists or ``None`` for the full rule.
    rng:
        Per-ant streams; must have at least ``m`` streams.
    m, n:
        Ants and cities.

    Returns
    -------
    (tours, fallback_steps):
        ``(m, n + 1)`` closed ``int32`` tours; number of candidate-list
        exhaustion events (always 0.0 for the full rule).
    """
    tours, fallbacks = construct_exact_batch(
        choice[None],
        None if nn_list is None else nn_list[None],
        rng,
        1,
        m,
        n,
        xp=xp,
        work=work,
        bulk_rng=bulk_rng,
    )
    return tours[0], float(fallbacks[0])


def construct_exact_batch(
    choice: np.ndarray,
    nn_list: np.ndarray | None,
    rng: DeviceRNG,
    B: int,
    m: int,
    n: int,
    xp=np,
    work=None,
    bulk_rng: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Batched :func:`construct_exact`: ``B`` colonies in one vectorized pass.

    ``choice`` is ``(B, n, n)`` and ``nn_list`` ``(B, n, nn)`` (either may be
    a broadcast view with a length-1 batch axis); ``rng`` holds ``B * m``
    streams laid out colony-major.  Row ``b`` of the returned tours and the
    per-colony fallback counts are bit-identical to a solo
    ``construct_exact(choice[b], nn_list[b], rng_b, m, n)`` with colony
    ``b``'s own generator — the steps draw one dart vector per colony per
    step in lockstep, exactly as the solo loop does.

    Returns
    -------
    (tours, fallbacks):
        ``(B, m, n + 1)`` closed ``int32`` tours; ``(B,)`` float fallback
        counts (all zero for the full rule).

    Notes
    -----
    The batch is executed as one flattened mega-colony of ``B * m`` ants
    over a block-diagonal choice structure: ant ``b * m + a`` reads choice
    rows ``b * n + city``.  Every per-step operation then has exactly the
    solo code's 2-D shape (rows = ants), which is both the fastest numpy
    layout and trivially equivalent row-for-row.

    ``work`` optionally supplies a per-engine
    :class:`~repro.backend.WorkBuffers` arena: all per-step scratch (and the
    loop-invariant index tables) are then hoisted across *iterations* too,
    so a steady-state build allocates only what escapes (tours, fallback
    counts).  ``bulk_rng=False`` falls back to per-step ``uniform()`` calls
    (the pre-amortisation reference; draws are bit-identical either way).
    """
    from repro.rng.streams import MAX_BLOCK_ELEMENTS, make_draws

    M = B * m

    def _buf(key: str, shape, dtype):
        if work is None:
            return xp.empty(shape, dtype=dtype)
        return work.get("taskexact." + key, shape, dtype)

    def _const(key: str, builder):
        if work is None:
            return builder()
        # Geometry-stamped keys: an arena is per-engine (fixed B, m, n), but
        # a stale constant after a geometry change would be silently wrong,
        # unlike get()'s shape-checked buffers.
        return work.cached(f"taskexact.{key}.{B}x{m}x{n}", builder)

    # All gather indices below are constructed from valid cities/ants, so
    # numpy's bounds check is pure overhead; mode="clip" skips it (measured
    # ~1.7x faster takes).  Only numpy spells the kwarg (CuPy's take wraps
    # unconditionally), and the skip rides with the hoisted path so the
    # arena-less mode stays a faithful pre-amortisation baseline.
    take_kw = {"mode": "clip"} if xp is np and work is not None else {}

    choice_rows = xp.ascontiguousarray(choice).reshape(B * n, n)
    choice_flat = choice_rows.reshape(-1)
    if nn_list is None:
        nn_cols = None
    else:
        # Candidate lists are engine-constant: the transposed copy (so the
        # per-step gather lands directly in the (candidates, ants) roulette
        # layout) is derived once per engine, not once per iteration.
        nn_cols = _const(
            "nn_cols",
            lambda: xp.ascontiguousarray(
                xp.ascontiguousarray(nn_list).reshape(B * n, -1).T.astype(np.int64)
            ),
        )
    row_off = _const(
        "row_off", lambda: xp.repeat(xp.arange(B, dtype=np.int64) * n, m)
    )  # (M,)
    ant_idx = _const("ant_idx", lambda: xp.arange(M))
    # (1, M) visited offsets, loop-invariant.
    ant_base_t = _const("ant_base_t", lambda: (xp.arange(M) * n)[None, :])
    tours = xp.empty((M, n + 1), dtype=np.int32)  # escapes: never pooled
    # Hoisted mode keeps the tabu list once, as its 1.0/0.0 float form:
    # weights are masked by a float multiply (the branchless tabu-flag
    # form) and the rare fallback path reads visitedness back as
    # ``live == 0.0``, so no boolean twin is scattered into every step.
    # The arena-less mode maintains the boolean twin the original kernels
    # carried, keeping it a faithful pre-amortisation baseline.
    visited = None if work is not None else xp.zeros((M, n), dtype=bool)
    live = _buf("live", (M, n), np.float64)
    live[:] = 1.0
    live_flat = live.reshape(-1)

    # One colony-major dart vector per step, pregenerated in bulk: every
    # step's vector is a zero-copy view of the block.  With one stream per
    # ant the row already is the flat (M,) layout, larger stream counts
    # slice the leading m streams of every colony block (what the solo
    # code's ``[:m]`` does) — also a view, consumed in the (B, m) shape.
    # Task-based kernels hold few streams, so the whole iteration's draws
    # usually fit one block and per-step consumption collapses to an index;
    # oversized cases chunk through BlockedDraws, huge ones per-step.
    spc = rng.n_streams // B
    whole_block = bulk_rng and n * rng.n_streams <= MAX_BLOCK_ELEMENTS
    if whole_block:
        blk = rng.uniform_block(
            n, out=_buf("rngblk", (n, rng.n_streams), np.float64)
        )
        u_steps = blk.reshape(n, B, spc)[:, :, :m]  # (n, B, m) view
        draw = None
    else:
        draws = make_draws(rng, n, bulk=bulk_rng, work=work, key="taskexact.rng")
        if spc == m:
            def draw():
                return draws.next().reshape(B, m)
        else:
            def draw():
                return draws.next().reshape(B, -1)[:, :m]

    d0 = u_steps[0] if whole_block else draw()
    start = xp.minimum((d0 * n).astype(np.int64), n - 1).reshape(M)
    tours[:, 0] = start
    if visited is not None:
        visited[ant_idx, start] = True
    live[ant_idx, start] = 0.0
    cur = start
    fallbacks = xp.zeros(B, dtype=np.float64)  # escapes: never pooled

    col_t = _const(
        "col_t", lambda: xp.arange(n, dtype=np.int64)[:, None]
    )  # (n, 1) full-rule columns
    k = n if nn_list is None else nn_cols.shape[0]
    if nn_list is not None:
        # Candidate choice values are static for the whole build: gather the
        # (candidate, row) weight table once instead of once per step.  The
        # gather *indices* are engine-constant; the gathered values track
        # this iteration's choice matrix, so only the index table is cached.
        cc_idx = _const(
            "cc_idx",
            lambda: xp.ascontiguousarray(
                (
                    (xp.arange(B * n, dtype=np.int64) * n)[:, None]
                    + xp.ascontiguousarray(nn_list).reshape(B * n, -1)
                ).T
            ),
        )
        cand_choice_t = xp.take(
            choice_flat,
            cc_idx,
            out=_buf("cand_choice_t", (k, B * n), np.float64),
            **take_kw,
        )  # (nn, B * n)

    # Per-step scratch, allocated once (and once per *engine* when an arena
    # is given): every step writes the same buffers in place (``out=``),
    # which removes the allocator/cache churn that otherwise dominates the
    # per-step cost of these small arrays.
    idx_buf = _buf("idx", (k, M), np.int64)
    cand_buf = _buf("cand", (k, M), np.int64)
    w_buf = _buf("w", (k, M), np.float64)
    live_buf = _buf("live_t", (k, M), np.float64)
    cmp_buf = _buf("cmp", (k, M), bool)
    rows_idx = _buf("rows_idx", (M,), np.int64)
    diag_off = _buf("diag_off", (M,), np.int64)
    r_buf = _buf("r", (M,), np.float64)
    pick_buf = _buf("pick", (M,), np.int64)
    r2 = r_buf.reshape(B, m)

    for step in range(1, n):
        darts = u_steps[step] if whole_block else draw()
        xp.add(row_off, cur, out=rows_idx)
        # All per-step arrays live in the transposed (candidates, ants)
        # layout: reductions over the candidate axis then run as ~nn
        # contiguous M-wide vector operations instead of M short rows —
        # the difference between per-row overhead and streaming throughput.
        if nn_list is None:
            cand_t = None
            xp.add(ant_base_t, col_t, out=idx_buf)
            xp.take(live_flat, idx_buf, out=live_buf, **take_kw)
            xp.multiply(rows_idx, n, out=diag_off)
            xp.subtract(diag_off, ant_base_t[0], out=diag_off)
            xp.add(idx_buf, diag_off[None, :], out=idx_buf)
            xp.take(choice_flat, idx_buf, out=w_buf, **take_kw)
        else:
            cand_t = xp.take(nn_cols, rows_idx, axis=1, out=cand_buf, **take_kw)
            xp.add(ant_base_t, cand_t, out=idx_buf)
            xp.take(live_flat, idx_buf, out=live_buf, **take_kw)
            xp.take(cand_choice_t, rows_idx, axis=1, out=w_buf, **take_kw)
        xp.multiply(w_buf, live_buf, out=w_buf)
        cum_t = _accumulate_rows(w_buf, xp=xp)
        sums = cum_t[-1]
        # darts is a (B, m) view of the pregenerated block row; multiplying
        # in that shape (r2 views r_buf) avoids flattening-copies entirely.
        xp.multiply(darts, sums.reshape(B, m), out=r2)
        xp.less(cum_t, r_buf[None, :], out=cmp_buf)
        xp.sum(cmp_buf, axis=0, out=pick_buf)
        pick = xp.minimum(pick_buf, k - 1, out=pick_buf)
        if nn_list is None:
            nxt = pick
        else:
            nxt = cand_t[pick, ant_idx]
            if xp.min(sums) <= 0.0:
                # Exhausted candidate lists: overwrite those ants with the
                # best-choice full-row fallback (ACOTSP's choose_best_next).
                dead = xp.nonzero(sums <= 0.0)[0]
                tabu = (
                    visited[dead] if visited is not None else live[dead] == 0.0
                )
                sub = xp.where(tabu, -np.inf, choice_rows[rows_idx[dead]])
                nxt[dead] = xp.argmax(sub, axis=1)
                fallbacks += xp.bincount(dead // m, minlength=B).astype(np.float64)
        if visited is not None:
            visited[ant_idx, nxt] = True
        live[ant_idx, nxt] = 0.0
        tours[:, step] = nxt
        # ``nxt`` may alias ``pick_buf`` (full rule); the next step reads
        # ``cur`` only before ``pick_buf`` is rewritten, so the alias is safe.
        cur = nxt

    tours[:, n] = tours[:, 0]
    return tours.reshape(B, m, n + 1), fallbacks


def _roulette(weights: np.ndarray, sums: np.ndarray, darts: np.ndarray) -> np.ndarray:
    """Row-wise roulette selection (rows must have positive mass)."""
    return _roulette_t(weights.T, sums, darts)


def _roulette_t(
    weights_t: np.ndarray, sums: np.ndarray, darts: np.ndarray
) -> np.ndarray:
    """Roulette selection over a transposed ``(candidates, ants)`` matrix.

    Columns must have positive mass.  The cumulative sum runs down the
    candidate axis — sequential accumulation, so every ant's selection is
    independent of how many ants share the batch.
    """
    return _pick_from_cum(np.add.accumulate(weights_t, axis=0), sums, darts)


def _pick_from_cum(
    cum_t: np.ndarray, sums: np.ndarray, darts: np.ndarray
) -> np.ndarray:
    """Winning candidate index per ant from a transposed cumulative sum."""
    r = darts * sums
    idx = np.count_nonzero(cum_t < r[None, :], axis=0)
    return np.minimum(idx, cum_t.shape[0] - 1)


def _accumulate_rows(w: np.ndarray, xp=np) -> np.ndarray:
    """In-place cumulative sum down axis 0; returns ``w``.

    Bit-identical to ``np.add.accumulate(w, axis=0)`` (same sequential
    addition order), but the explicit row loop runs as contiguous
    ant-axis vector adds, which the ufunc's per-column accumulate does not —
    a large win once the batch is wide.  Branching on the width is safe for
    cross-batch equivalence precisely because both forms produce identical
    bits.  Non-numpy backends always take the explicit row loop (the
    ``ufunc.accumulate`` method is a numpy-only API).
    """
    if w.shape[1] >= 512 or xp is not np:
        for i in range(1, w.shape[0]):
            xp.add(w[i - 1], w[i], out=w[i])
        return w
    # np-gated on purpose: this branch runs only when xp IS numpy (the
    # ufunc.accumulate method is a numpy-only API; see the gate above).
    return np.add.accumulate(w, axis=0, out=w)  # lint: ignore[backend-purity]


class _TaskBasedFull(TourConstruction):
    """Shared scaffolding for the full-scan task-based versions 1-3."""

    #: scattered 4-byte global loads per candidate evaluation
    loads_per_cand: float = 2.0
    #: SFU operations per candidate (version 1's on-the-fly heuristic)
    special_per_cand: float = 0.0
    #: plain float ops per candidate
    flops_per_cand: float = 2.0
    #: integer/address ops per candidate
    int_per_cand: float = 3.0

    def launch_config(self, device: DeviceSpec, *, m: int) -> LaunchConfig:
        block = min(TASK_BLOCK, device.max_threads_per_block)
        return LaunchConfig(grid=grid_for(m, block), block=block, regs_per_thread=24)

    def build(self, state: ColonyState, rng: DeviceRNG) -> ConstructionResult:
        choice = self._choice_matrix(state)
        tours, fallbacks = construct_exact(
            choice,
            None,
            rng,
            state.m,
            state.n,
            xp=state.backend.xp,
            work=state.work,
            bulk_rng=state.bulk_rng,
        )
        stats, launch = self.predict_stats(
            state.n, state.m, state.nn, state.device, fallback_steps=fallbacks
        )
        report = StageReport(
            stage="construction", kernel=self.key, stats=stats, launch=launch
        )
        return ConstructionResult(tours=tours, report=report, fallback_steps=fallbacks)

    def build_batch(
        self, bstate, rng: DeviceRNG, collect: bool = True
    ) -> BatchConstructionResult:
        B, n, m = bstate.B, bstate.n, bstate.m
        self._validate_batch_rng(rng, B, n, m)
        choice = self._choice_matrix_batch(bstate)
        tours, fallbacks = construct_exact_batch(
            choice,
            None,
            rng,
            B,
            m,
            n,
            xp=bstate.backend.xp,
            work=bstate.work,
            bulk_rng=bstate.bulk_rng,
        )
        return BatchConstructionResult(
            tours=tours,
            reports=self._batch_reports(bstate, fallbacks) if collect else [],
            fallback_steps=fallbacks,
        )

    def _choice_matrix(self, state: ColonyState) -> np.ndarray:
        """Weights used by the proportional rule (versions 2-3 read
        ``choice_info``; version 1 overrides to recompute on the fly)."""
        self._validate_state(state)
        assert state.choice_info is not None
        return state.choice_info

    def _choice_matrix_batch(self, bstate) -> np.ndarray:
        """Batched counterpart of :meth:`_choice_matrix`: ``(B, n, n)``."""
        if bstate.choice_info is None:
            from repro.errors import ACOConfigError

            raise ACOConfigError(
                "batched construction requires choice_info; run the Choice "
                "kernel first (the engine does this automatically)"
            )
        return bstate.choice_info

    def predict_stats(
        self,
        n: int,
        m: int,
        nn: int,
        device: DeviceSpec,
        *,
        fallback_steps: float = 0.0,
    ) -> tuple[KernelStats, LaunchConfig]:
        stats = KernelStats()
        launch = self.launch_config(device, m=m)
        self.record_launch(stats, launch)

        cands = float(m) * (n - 1) * n
        gmem = GlobalMemory(device, stats)
        gmem.load(
            (self.loads_per_cand + WALK_LOADS_PER_CAND) * cands,
            4,
            AccessPattern.RANDOM,
        )
        gmem.store(float(m) * n, 4, AccessPattern.RANDOM)  # tour writes
        stats.special_ops += self.special_per_cand * cands
        stats.flops += self.flops_per_cand * cands
        stats.int_ops += self.int_per_cand * cands
        stats.divergent_branches += DIVERGENCE_FRACTION * cands
        samples = cands + m  # one per candidate + initial placement
        if self.rng_kind == "curand":
            stats.rng_curand += samples
        else:
            stats.rng_lcg += samples
        return stats, launch


class BaselineTaskConstruction(_TaskBasedFull):
    """Version 1 — task-based baseline with redundant heuristic computation.

    Per candidate: scattered loads of ``tau`` and ``d`` plus the tabu flag,
    two ``powf`` and a divide on the SFU path, CURAND randoms.
    """

    version = 1
    key = "task_baseline"
    label = "Baseline Version"
    needs_choice_info = False
    rng_kind = "curand"

    loads_per_cand = 3.0  # tau, dist, tabu — all scattered
    special_per_cand = 3.0  # 2 powf + 1 divide (eta = 1/d)
    flops_per_cand = 3.0
    int_per_cand = 3.0

    def _choice_matrix(self, state: ColonyState) -> np.ndarray:
        # Functionally identical to the on-the-fly computation; the *cost*
        # of recomputation is charged per candidate in predict_stats.
        from repro.core.choice import compute_choice

        p = state.params
        xp = state.backend.xp
        w = compute_choice(state.pheromone, state.eta, p.alpha, p.beta, xp=xp)
        diag = xp.arange(state.n)
        w[diag, diag] = 0.0
        return w

    def _choice_matrix_batch(self, bstate) -> np.ndarray:
        from repro.core.choice import compute_choice_batch

        xp = bstate.backend.xp
        w = compute_choice_batch(
            bstate.pheromone, bstate.eta, bstate.alpha, bstate.beta, xp=xp
        )
        diag = xp.arange(bstate.n)
        w[:, diag, diag] = 0.0
        return w


class ChoiceKernelTaskConstruction(_TaskBasedFull):
    """Version 2 — adds the Choice kernel; ants read ``choice_info``."""

    version = 2
    key = "task_choice"
    label = "Choice Kernel"
    needs_choice_info = True
    rng_kind = "curand"

    loads_per_cand = 2.0  # choice_info + tabu


class DeviceRngTaskConstruction(_TaskBasedFull):
    """Version 3 — version 2 with the device-function LCG instead of CURAND."""

    version = 3
    key = "task_lcg"
    label = "Without CURAND"
    needs_choice_info = True
    rng_kind = "lcg"

    loads_per_cand = 2.0
