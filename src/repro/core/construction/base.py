"""Tour-construction strategy interface.

All eight Table II variants implement :class:`TourConstruction`:

* :meth:`~TourConstruction.build` — the functional simulation: produce one
  valid closed tour per ant and a :class:`~repro.core.report.StageReport`
  whose ledger records the kernel work;
* :meth:`~TourConstruction.predict_stats` — the closed-form ledger for a
  problem size, used by the experiment harness at sizes where a functional
  run is unnecessary and by tests to cross-check the simulation.

The task-based variants (1-6) share the *exact* random-proportional rule
(they differ in where the data lives and how randoms are produced); the
shared construction loop lives in
:mod:`repro.core.construction.taskbased`.  The data-parallel variants (7-8)
replace the selection with the block-reduction "independent roulette" of the
paper's Figure 1 (:mod:`repro.core.construction.dataparallel`).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.core.report import StageReport, cached_stage_reports
from repro.core.state import ColonyState
from repro.errors import ACOConfigError
from repro.rng.streams import DeviceRNG
from repro.simt.counters import KernelStats
from repro.simt.device import DeviceSpec
from repro.simt.kernel import Kernel, LaunchConfig

__all__ = ["TourConstruction", "ConstructionResult", "BatchConstructionResult"]


@dataclass
class ConstructionResult:
    """Functional output of a construction build."""

    tours: np.ndarray  # (m, n + 1) int32 closed tours
    report: StageReport
    fallback_steps: float = 0.0  # candidate-list exhaustions (nnlist rules)


@dataclass
class BatchConstructionResult:
    """Functional output of a batched build over ``B`` independent colonies.

    Row ``b`` of every field is bit-identical to what a solo
    :meth:`TourConstruction.build` with colony ``b``'s seed produces.
    """

    tours: np.ndarray  # (B, m, n + 1) int32 closed tours
    reports: list[StageReport]  # one per colony
    fallback_steps: np.ndarray  # (B,) per-colony exhaustion counts


class TourConstruction(Kernel, abc.ABC):
    """Base class for the Table II tour-construction kernels.

    Class attributes identify the paper row: ``version`` (1-8), ``key``
    (stable registry id) and ``label`` (the row label as printed in the
    paper).  ``needs_choice_info`` tells the colony whether to run the
    Choice kernel first (version 1 famously does not, recomputing the
    heuristic on the fly); ``rng_kind`` selects the random stream the colony
    hands to :meth:`build`.
    """

    version: int = 0
    key: str = ""
    label: str = ""
    needs_choice_info: bool = True
    rng_kind: str = "lcg"  # "lcg" | "curand"

    # ------------------------------------------------------------ interface

    @abc.abstractmethod
    def build(self, state: ColonyState, rng: DeviceRNG) -> ConstructionResult:
        """Construct one tour per ant, recording kernel work."""

    def build_batch(
        self, bstate, rng: DeviceRNG, collect: bool = True
    ) -> BatchConstructionResult:
        """Construct tours for ``bstate.B`` colonies in one vectorized pass.

        ``bstate`` is a :class:`~repro.core.batch.BatchColonyState`; ``rng``
        must hold ``B * rng_streams(n, m)`` streams laid out colony-major
        (see :func:`repro.rng.make_batched_rng`).  Row ``b`` of the result is
        bit-identical to a solo :meth:`build` on colony ``b`` alone.

        ``collect=False`` skips per-colony report materialization (the
        amortized ``report_every=K`` loop only reports at K-boundaries);
        the returned ``reports`` list is then empty.  The tours themselves
        are identical either way.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement batched construction"
        )

    @abc.abstractmethod
    def predict_stats(
        self,
        n: int,
        m: int,
        nn: int,
        device: DeviceSpec,
        *,
        fallback_steps: float = 0.0,
    ) -> tuple[KernelStats, LaunchConfig]:
        """Closed-form ledger + dominant launch shape for a problem size.

        ``fallback_steps`` injects the (stochastic) number of candidate-list
        exhaustions for the nn-list rules; pass a measured value or a model
        such as :func:`expected_fallback_steps`.
        """

    # -------------------------------------------------------------- helpers

    def rng_streams(self, n: int, m: int) -> int:
        """Random streams the kernel needs (task-based: one per ant-thread;
        the data-parallel kernels override with one per (ant, city))."""
        return m

    @staticmethod
    def _validate_state(state: ColonyState) -> None:
        if state.choice_info is None:
            raise ACOConfigError(
                "construction requires choice_info; run the Choice kernel first "
                "(the colony does this automatically)"
            )

    def _batch_reports(self, bstate, fallbacks) -> list[StageReport]:
        """Per-colony construction reports; rows with equal fallback counts
        share one closed-form ledger (the stats are pure functions of the
        problem size and the fallback count)."""

        def build(fb: float) -> StageReport:
            stats, launch = self.predict_stats(
                bstate.n, bstate.m, bstate.nn, bstate.device, fallback_steps=fb
            )
            return StageReport(
                stage="construction", kernel=self.key, stats=stats, launch=launch
            )

        return cached_stage_reports((float(fb) for fb in fallbacks), build)

    def _validate_batch_rng(self, rng: DeviceRNG, B: int, n: int, m: int) -> None:
        need = B * self.rng_streams(n, m)
        if rng.n_streams != need:
            raise ACOConfigError(
                f"batched {self.key} construction needs exactly {need} rng "
                f"streams for B={B} colonies, got {rng.n_streams}"
            )

    @staticmethod
    def close_tours(tours_body: np.ndarray) -> np.ndarray:
        """Append the closing city column to an ``(m, n)`` permutation set."""
        return np.concatenate([tours_body, tours_body[:, :1]], axis=1)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} v{self.version} {self.label!r}>"


#: Fitted constant of the fallback model: fallbacks per ant per iteration
#: ≈ FALLBACK_COEFF * n / nn.  Measured functionally on the synthetic suite
#: (att48..d657, nn ∈ {10, 20, 30, 40}): the product ``phi * nn`` sits in
#: 0.60-0.64 across the whole grid (tests/core/test_construction_fallback.py
#: re-validates the band).
FALLBACK_COEFF = 0.62


def expected_fallback_steps(n: int, m: int, nn: int) -> float:
    """Expected candidate-list exhaustion count per iteration.

    An exhaustion happens when all ``nn`` candidates of the current city are
    already visited, forcing ACOTSP's ``choose_best_next`` full scan.
    Functional measurement across instance sizes and list widths shows the
    per-ant count is very close to ``0.62 * n / nn``::

        E[fallbacks] ≈ m * 0.62 * n / nn   (clipped to the step count)

    Exhaustions grow with the tour length (more opportunities to stand in a
    depleted neighbourhood) and shrink with the candidate width.
    """
    if n <= 1:
        return 0.0
    per_ant = min(float(n - 1), FALLBACK_COEFF * float(n) / float(nn))
    return float(m) * per_ant
