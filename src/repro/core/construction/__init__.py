"""Tour-construction strategies: the eight Table II kernel versions.

Use :func:`make_construction` to instantiate by version number (1-8), by
registry key, or pass a ready-made strategy through unchanged.
"""

from __future__ import annotations

from repro.core.construction.base import (
    ConstructionResult,
    TourConstruction,
    expected_fallback_steps,
)
from repro.core.construction.dataparallel import (
    DataParallelConstruction,
    DataParallelTextureConstruction,
)
from repro.core.construction.nnlist import (
    NNListConstruction,
    NNListSharedConstruction,
    NNListTextureConstruction,
    TabuLayout,
    tabu_layout,
)
from repro.core.construction.taskbased import (
    BaselineTaskConstruction,
    ChoiceKernelTaskConstruction,
    DeviceRngTaskConstruction,
    construct_exact,
)

__all__ = [
    "TourConstruction",
    "ConstructionResult",
    "expected_fallback_steps",
    "construct_exact",
    "BaselineTaskConstruction",
    "ChoiceKernelTaskConstruction",
    "DeviceRngTaskConstruction",
    "NNListConstruction",
    "NNListSharedConstruction",
    "NNListTextureConstruction",
    "DataParallelConstruction",
    "DataParallelTextureConstruction",
    "TabuLayout",
    "tabu_layout",
    "CONSTRUCTION_VERSIONS",
    "make_construction",
]

#: Table II rows in order: version number -> strategy class.
CONSTRUCTION_VERSIONS: dict[int, type[TourConstruction]] = {
    cls.version: cls
    for cls in (
        BaselineTaskConstruction,
        ChoiceKernelTaskConstruction,
        DeviceRngTaskConstruction,
        NNListConstruction,
        NNListSharedConstruction,
        NNListTextureConstruction,
        DataParallelConstruction,
        DataParallelTextureConstruction,
    )
}

_BY_KEY = {cls.key: cls for cls in CONSTRUCTION_VERSIONS.values()}


def make_construction(
    which: int | str | TourConstruction, **options
) -> TourConstruction:
    """Instantiate a construction strategy.

    Parameters
    ----------
    which:
        Version number (1-8), registry key (e.g. ``"nnlist_texture"``), or
        an already-built strategy (returned unchanged; options must then be
        empty).
    **options:
        Forwarded to the strategy constructor (e.g. ``tile=512`` for the
        data-parallel kernels).
    """
    if isinstance(which, TourConstruction):
        if options:
            raise ValueError("options cannot be combined with a strategy instance")
        return which
    if isinstance(which, bool):  # guard: bool is an int subclass
        raise TypeError("construction selector cannot be a bool")
    if isinstance(which, int):
        try:
            cls = CONSTRUCTION_VERSIONS[which]
        except KeyError:
            raise ValueError(
                f"unknown construction version {which}; valid: "
                f"{sorted(CONSTRUCTION_VERSIONS)}"
            ) from None
        return cls(**options)
    try:
        cls = _BY_KEY[which]
    except KeyError:
        raise ValueError(
            f"unknown construction key {which!r}; valid: {sorted(_BY_KEY)}"
        ) from None
    return cls(**options)
