"""Data-parallel tour construction: Table II versions 7-8 (paper Fig. 1).

The paper's main construction contribution: instead of a thread per ant, a
**thread block per ant** with a **thread per city**.  Each step:

1. every thread loads the choice value of its city (``choice_info[cur][j]``
   — a *coalesced* row read, unlike the task-based kernels' scattered
   gathers),
2. generates a random number ``U_j in [0, 1)``,
3. multiplies it by a 0/1 visited flag kept in a register (no branch — the
   warp-divergence killer of the task-based kernels),
4. writes the product to shared memory, and a tree reduction selects the
   winning city.

When ``n`` exceeds the block size, cities are processed in **tiles**: each
tile elects a partial winner, and the final city is chosen among the tile
winners.  With the default ``tile_rule="product"`` the winner is the global
argmax of the products (exactly what a single huge block would compute);
``tile_rule="heuristic"`` picks among tile winners by raw choice value —
the paper's more literal reading — and is exposed as an ablation.  In the
tiled regime the per-thread visited flags are **bit-packed** into a register
word, one bit per tile (the paper's register tabu).

This selection — dubbed *I-Roulette* in the authors' follow-up work — is not
the exact proportional rule; it preserves the monotone preference for high
``choice_info`` values while drawing ``n`` randoms per step.  Solution
quality remains statistically indistinguishable from the sequential code on
the paper's benchmarks (tests/integration cover this).

Version 8 reads ``choice_info`` through the texture path.
"""

from __future__ import annotations

import numpy as np

from repro.core.construction.base import (
    BatchConstructionResult,
    ConstructionResult,
    TourConstruction,
)
from repro.core.report import StageReport
from repro.core.state import ColonyState
from repro.errors import ACOConfigError
from repro.rng.streams import DeviceRNG
from repro.simt.counters import KernelStats
from repro.simt.device import DeviceSpec
from repro.simt.kernel import LaunchConfig
from repro.simt.memory import AccessPattern, GlobalMemory, TextureMemory
from repro.simt.reduction import block_argmax, reduction_stage_count

__all__ = ["DataParallelConstruction", "DataParallelTextureConstruction"]

_TILE_RULES = ("product", "heuristic")


def _round_up(value: int, multiple: int) -> int:
    return -(-value // multiple) * multiple


class DataParallelConstruction(TourConstruction):
    """Version 7 — one block per ant, one thread per city, tiled.

    Parameters
    ----------
    tile:
        Preferred tile width (threads per block); clipped to the device's
        block limit and rounded to warp multiples.
    tile_rule:
        ``"product"`` (default; global argmax of ``choice × U × unvisited``)
        or ``"heuristic"`` (tile winners compared by raw choice value).
    """

    version = 7
    key = "data_parallel"
    label = "Increasing Data Parallelism"
    needs_choice_info = True
    rng_kind = "lcg"
    choice_via_texture = False

    def __init__(self, tile: int = 256, tile_rule: str = "product") -> None:
        if tile < 32:
            raise ACOConfigError(f"tile must be >= 32, got {tile}")
        if tile_rule not in _TILE_RULES:
            raise ACOConfigError(f"tile_rule must be one of {_TILE_RULES}, got {tile_rule!r}")
        self.tile = int(tile)
        self.tile_rule = tile_rule

    # ------------------------------------------------------------- geometry

    def rng_streams(self, n: int, m: int) -> int:
        """One stream per (ant, city) pair — a thread-private generator."""
        return m * n

    def tile_width(self, device: DeviceSpec, n: int) -> int:
        width = min(self.tile, device.max_threads_per_block, _round_up(n, 32))
        return max(32, width)

    def launch_config(self, device: DeviceSpec, *, n: int, m: int) -> LaunchConfig:
        theta = self.tile_width(device, n)
        # Shared memory: the reduction scratch (value + index per thread).
        return LaunchConfig(
            grid=m, block=theta, smem_per_block=8 * theta, regs_per_thread=20
        )

    def _tile_spans(self, n: int, theta: int) -> list[tuple[int, int]]:
        return [(t, min(t + theta, n)) for t in range(0, n, theta)]

    # ----------------------------------------------------------------- build

    def build(self, state: ColonyState, rng: DeviceRNG) -> ConstructionResult:
        self._validate_state(state)
        assert state.choice_info is not None
        n, m, device = state.n, state.m, state.device
        xp = state.backend.xp
        if rng.n_streams < m * n:
            raise ACOConfigError(
                f"data-parallel construction needs m*n={m * n} rng streams, "
                f"got {rng.n_streams}"
            )
        choice = state.choice_info
        theta = self.tile_width(device, n)
        spans = self._tile_spans(n, theta)

        stats = KernelStats()
        launch = self.launch_config(device, n=n, m=m)
        self.record_launch(stats, launch)
        gmem = GlobalMemory(device, stats)
        tex = TextureMemory(device, stats)

        from repro.rng.streams import make_draws

        ant_idx = xp.arange(m)
        tours = xp.empty((m, n + 1), dtype=np.int32)
        visited = xp.zeros((m, n), dtype=bool)

        # One draw vector per step, pregenerated in bulk (bit-identical to
        # per-step uniform() calls; the ledger charge below is unchanged).
        draws = make_draws(
            rng, n, bulk=state.bulk_rng, work=state.work, key="dp_solo.rng"
        )

        start = xp.minimum((draws.next()[:m] * n).astype(np.int64), n - 1)
        stats.rng_lcg += m
        tours[:, 0] = start
        visited[ant_idx, start] = True
        cur = start

        for step in range(1, n):
            u = draws.next().reshape(m, n)
            stats.rng_lcg += float(m) * n

            rows = choice[cur]  # (m, n) coalesced row reads
            if self.choice_via_texture:
                tex.load(float(m) * n, 4)
            else:
                gmem.load(float(m) * n, 4, AccessPattern.COALESCED)

            w = rows * u * ~visited
            stats.flops += 2.0 * m * n  # two multiplies per thread
            stats.int_ops += 2.0 * m * n  # register-tabu bit select + index
            stats.smem_accesses += float(m) * n  # product written to shared

            # Per-tile partial winners via the block reduction.
            tile_city = xp.empty((m, len(spans)), dtype=np.int64)
            tile_val = xp.empty((m, len(spans)), dtype=np.float64)
            for t, (lo, hi) in enumerate(spans):
                idx, val = block_argmax(w[:, lo:hi], stats, xp=xp)
                tile_city[:, t] = idx + lo
                tile_val[:, t] = val
            stats.serial_barriers += float(
                sum(reduction_stage_count(hi - lo) + 1 for lo, hi in spans)
            )

            # Final selection among tile winners.
            stats.int_ops += float(m) * len(spans)
            if self.tile_rule == "product" or len(spans) == 1:
                pick = xp.argmax(tile_val, axis=1)
            else:
                # Heuristic rule: compare winners by raw choice value, but a
                # tile whose every city is visited (value 0) cannot win.
                winner_choice = choice[cur[:, None], tile_city]
                winner_choice = xp.where(tile_val > 0.0, winner_choice, -np.inf)
                pick = xp.argmax(winner_choice, axis=1)
                stats.int_ops += float(m) * len(spans)
            nxt = tile_city[ant_idx, pick]

            visited[ant_idx, nxt] = True
            tours[:, step] = nxt
            gmem.store(float(m), 4, AccessPattern.RANDOM)
            cur = nxt

        tours[:, n] = tours[:, 0]
        report = StageReport(
            stage="construction", kernel=self.key, stats=stats, launch=launch
        )
        return ConstructionResult(tours=tours, report=report, fallback_steps=0.0)

    def build_batch(
        self, bstate, rng: DeviceRNG, collect: bool = True
    ) -> BatchConstructionResult:
        """Batched I-Roulette: ``B`` colonies advance through every step in
        one set of vectorized array operations.

        The per-step math is the solo :meth:`build` with a leading batch
        axis; the per-row RNG draws, tile reductions and tie-breaks are
        bit-identical to a solo run seeded like row ``b``.  The ledger is
        deterministic for this kernel (``predict_stats`` mirrors ``build``
        exactly), so per-colony reports come from the closed form.
        """
        from repro.rng.streams import make_draws

        B, n, m, device = bstate.B, bstate.n, bstate.m, bstate.device
        xp = bstate.backend.xp
        wb = bstate.work
        self._validate_batch_rng(rng, B, n, m)
        if bstate.choice_info is None:
            raise ACOConfigError(
                "batched construction requires choice_info; run the Choice "
                "kernel first (the engine does this automatically)"
            )
        theta = self.tile_width(device, n)
        spans = self._tile_spans(n, theta)

        def _buf(key: str, shape, dtype):
            if wb is None:
                return xp.empty(shape, dtype=dtype)
            return wb.get("dp." + key, shape, dtype)

        def _const(key: str, builder):
            if wb is None:
                return builder()
            # Geometry-stamped: see construct_exact_batch's _const.
            return wb.cached(f"dp.{key}.{B}x{m}x{n}", builder)

        # Flattened mega-colony layout: B * m ants, ant b*m+a reading choice
        # rows b*n + city — every per-step op keeps the solo 2-D shape.
        M = B * m
        choice_rows = xp.ascontiguousarray(bstate.choice_info).reshape(B * n, n)
        choice_flat = choice_rows.reshape(-1)
        row_off = _const(
            "row_off", lambda: xp.repeat(xp.arange(B, dtype=np.int64) * n, m)
        )  # (M,)
        ant_idx = _const("ant_idx", lambda: xp.arange(M))
        tours = xp.empty((M, n + 1), dtype=np.int32)  # escapes: never pooled

        # The iteration's draws, pregenerated in bulk: the first-step vector
        # is a single sliced view off the block row (each colony's leading m
        # streams), with no contiguity copies.
        draws = make_draws(rng, n, bulk=bstate.bulk_rng, work=wb, key="dp.rng")
        u0 = draws.next().reshape(B, -1)[:, :m]
        start = xp.minimum((u0 * n).astype(np.int64), n - 1).reshape(M)
        tours[:, 0] = start
        cur = start

        # ``live`` mirrors the register tabu as a 1.0/0.0 multiplicand (a
        # float multiply by the flag, exactly the kernel's branchless form);
        # scratch buffers are reused across steps — and, with an arena,
        # across iterations — to avoid allocator churn.
        live = _buf("live", (M, n), np.float64)
        live[:] = 1.0
        live[ant_idx, start] = 0.0
        rows_buf = _buf("rows", (M, n), np.float64)
        rows_idx = _buf("rows_idx", (M,), np.int64)
        tile_city = _buf("tile_city", (M, len(spans)), np.int64)
        tile_val = _buf("tile_val", (M, len(spans)), np.float64)

        # In-range indices by construction: numpy's bounds check is pure
        # overhead, so mode="clip" skips it (CuPy's take has no mode kwarg
        # and wraps unconditionally).  The skip rides with the hoisted path
        # so the arena-less mode stays a faithful pre-amortisation baseline.
        take_kw = {"mode": "clip"} if xp is np and wb is not None else {}
        # (M,) flat row bases into the (M, n) product matrix, for gathering
        # each ant's winning value without per-step index allocations.
        ant_base = _const("ant_base", lambda: xp.arange(M, dtype=np.int64) * n)
        win_idx = _buf("win_idx", (M,), np.int64)
        win_val = _buf("win_val", (M,), np.float64)
        for step in range(1, n):
            u = draws.next().reshape(M, n)
            xp.add(row_off, cur, out=rows_idx)
            w = xp.take(choice_rows, rows_idx, axis=0, out=rows_buf, **take_kw)
            xp.multiply(w, u, out=w)
            xp.multiply(w, live, out=w)

            # Per-tile winners.  With an arena, block_argmax is inlined
            # (same argmax + value gather, minus its per-call index scratch;
            # ties resolve to the lowest lane either way); without one, the
            # original helper keeps the pre-amortisation baseline faithful.
            if wb is not None:
                w_flat = w.reshape(-1)
                for t, (lo, hi) in enumerate(spans):
                    idx = xp.argmax(w[:, lo:hi], axis=1)
                    xp.add(idx, lo, out=win_idx)
                    tile_city[:, t] = win_idx
                    xp.add(win_idx, ant_base, out=win_idx)
                    xp.take(w_flat, win_idx, out=win_val, **take_kw)
                    tile_val[:, t] = win_val
            else:
                for t, (lo, hi) in enumerate(spans):
                    idx, val = block_argmax(w[:, lo:hi], xp=xp)
                    tile_city[:, t] = idx + lo
                    tile_val[:, t] = val

            if len(spans) == 1 and wb is not None:
                # One tile covers every city: its winner IS the next city
                # (argmax over a single column is identically zero).  Gated
                # with the arena so the arena-less mode keeps the original
                # argmax-and-gather, as a faithful pre-amortisation baseline.
                nxt = tile_city[:, 0]
            elif self.tile_rule == "product" or len(spans) == 1:
                pick = xp.argmax(tile_val, axis=1)
                nxt = tile_city[ant_idx, pick]
            else:
                winner_choice = choice_flat[rows_idx[:, None] * n + tile_city]
                winner_choice = xp.where(tile_val > 0.0, winner_choice, -np.inf)
                pick = xp.argmax(winner_choice, axis=1)
                nxt = tile_city[ant_idx, pick]

            live[ant_idx, nxt] = 0.0
            tours[:, step] = nxt
            cur = nxt

        tours[:, n] = tours[:, 0]
        tours = tours.reshape(B, m, n + 1)
        return BatchConstructionResult(
            tours=tours,
            reports=self._batch_reports(bstate, xp.zeros(B)) if collect else [],
            fallback_steps=xp.zeros(B),
        )

    # --------------------------------------------------------------- ledger

    def predict_stats(
        self,
        n: int,
        m: int,
        nn: int,
        device: DeviceSpec,
        *,
        fallback_steps: float = 0.0,
    ) -> tuple[KernelStats, LaunchConfig]:
        """Closed-form ledger mirroring :meth:`build` exactly.

        Derived independently from the kernel geometry (tiles, reduction
        depths); ``tests/core`` asserts simulate == predict.
        """
        stats = KernelStats()
        launch = self.launch_config(device, n=n, m=m)
        self.record_launch(stats, launch)
        gmem = GlobalMemory(device, stats)

        theta = self.tile_width(device, n)
        spans = self._tile_spans(n, theta)
        steps = float(n - 1)
        mn = float(m) * n

        # Choice loads.
        if self.choice_via_texture:
            stats.tex_bytes += 4.0 * steps * mn
        else:
            gmem.load(steps * mn, 4, AccessPattern.COALESCED)

        # RNG: initial placement + one per thread per step.
        stats.rng_lcg += m + steps * mn

        # Per-thread work and the product writes.
        stats.flops += steps * 2.0 * mn
        stats.int_ops += steps * 2.0 * mn
        stats.smem_accesses += steps * mn

        # Reductions: replicate simt.reduction's accounting per tile.
        red_flops = red_smem = red_sync = red_steps = serial = 0.0
        for lo, hi in spans:
            width = hi - lo
            stages = reduction_stage_count(width)
            participating = 0
            w = width
            for _ in range(stages):
                w = (w + 1) // 2
                participating += w
            red_steps += stages
            red_smem += width + 2 * participating
            red_flops += participating
            red_sync += stages
            serial += stages + 1
        stats.reduction_steps += steps * m * (red_steps / 1.0)
        stats.smem_accesses += steps * m * red_smem
        stats.flops += steps * m * red_flops
        stats.syncthreads += steps * m * red_sync
        stats.serial_barriers += steps * serial

        # Final pick among tile winners.
        final_int = float(len(spans)) * (2.0 if self.tile_rule == "heuristic" and len(spans) > 1 else 1.0)
        stats.int_ops += steps * m * final_int

        # Tour writes (thread 0 of each block).
        gmem.store(steps * m, 4, AccessPattern.RANDOM)
        return stats, launch


class DataParallelTextureConstruction(DataParallelConstruction):
    """Version 8 — data parallelism with ``choice_info`` served by texture."""

    version = 8
    key = "data_parallel_texture"
    label = "Data Parallelism + Texture Memory"
    choice_via_texture = True
