"""The Choice kernel: precompute ``choice_info = tau^alpha * eta^beta``.

Table II's version 2 introduces this kernel: instead of every ant
recomputing ``[tau]^alpha [eta]^beta`` for every candidate at every step
(version 1's "redundant calculations"), a dedicated n²-thread kernel
evaluates the matrix once per iteration and the construction kernels read it
back.  This mirrors ACOTSP's ``compute_total_information``.
"""

from __future__ import annotations

import numpy as np

from repro.core.report import StageReport
from repro.core.state import ColonyState
from repro.simt.counters import KernelStats
from repro.simt.device import DeviceSpec
from repro.simt.kernel import Kernel, LaunchConfig, grid_for
from repro.simt.memory import AccessPattern, GlobalMemory

__all__ = ["ChoiceKernel"]


class ChoiceKernel(Kernel):
    """n²-thread kernel filling the choice-info matrix.

    Each thread handles one matrix cell: coalesced loads of ``tau[i][j]``
    and ``d[i][j]``, two ``powf`` and one divide on the SFU path, one
    multiply, one coalesced store.
    """

    name = "choice_info"

    def __init__(self, block: int = 256) -> None:
        self.block = int(block)

    def launch_config(self, device: DeviceSpec, *, n: int) -> LaunchConfig:
        block = min(self.block, device.max_threads_per_block)
        return LaunchConfig(grid=grid_for(n * n, block), block=block)

    # ---------------------------------------------------------------- run

    def run(self, state: ColonyState) -> StageReport:
        """Compute ``state.choice_info`` in place and account the kernel."""
        params = state.params
        choice = np.power(state.pheromone, params.alpha) * np.power(
            state.eta, params.beta
        )
        np.fill_diagonal(choice, 0.0)
        state.choice_info = choice

        stats, launch = self.predict_stats(state.n, state.device)
        return StageReport(stage="choice", kernel=self.name, stats=stats, launch=launch)

    def run_batch(self, bstate) -> list[StageReport]:
        """Refresh ``bstate.choice_info`` (``(B, n, n)``) for all colonies.

        One elementwise pass with per-row exponents — row ``b`` is
        bit-identical to the solo :meth:`run` on colony ``b``.
        """
        choice = np.power(bstate.pheromone, bstate.alpha[:, None, None]) * np.power(
            bstate.eta, bstate.beta[:, None, None]
        )
        diag = np.arange(bstate.n)
        choice[:, diag, diag] = 0.0
        bstate.choice_info = choice

        stats, launch = self.predict_stats(bstate.n, bstate.device)
        report = StageReport(stage="choice", kernel=self.name, stats=stats, launch=launch)
        return [report] * bstate.B

    def predict_stats(
        self, n: int, device: DeviceSpec
    ) -> tuple[KernelStats, LaunchConfig]:
        """Closed-form ledger of one choice-kernel launch."""
        stats = KernelStats()
        launch = self.launch_config(device, n=n)
        self.record_launch(stats, launch)
        cells = float(n) * n
        gmem = GlobalMemory(device, stats)
        gmem.load(2.0 * cells, 4, AccessPattern.COALESCED)  # tau, dist
        gmem.store(cells, 4, AccessPattern.COALESCED)  # choice_info
        stats.special_ops += 3.0 * cells  # 2 powf + 1 divide (eta from d)
        stats.flops += cells  # product
        stats.int_ops += 2.0 * cells  # index arithmetic
        return stats, launch
