"""The Choice kernel: precompute ``choice_info = tau^alpha * eta^beta``.

Table II's version 2 introduces this kernel: instead of every ant
recomputing ``[tau]^alpha [eta]^beta`` for every candidate at every step
(version 1's "redundant calculations"), a dedicated n²-thread kernel
evaluates the matrix once per iteration and the construction kernels read it
back.  This mirrors ACOTSP's ``compute_total_information``.
"""

from __future__ import annotations

import numpy as np

from repro.core.report import StageReport
from repro.core.state import ColonyState
from repro.simt.counters import KernelStats
from repro.simt.device import DeviceSpec
from repro.simt.kernel import Kernel, LaunchConfig, grid_for
from repro.simt.memory import AccessPattern, GlobalMemory

__all__ = ["ChoiceKernel", "compute_choice", "compute_choice_batch"]


def compute_choice(tau, eta, alpha: float, beta: float, *, xp=np, out=None):
    """``tau^alpha * eta^beta`` with identity-exponent fast paths.

    ``pow(x, 1.0)`` is required (and verified by the test-suite) to return
    ``x`` bit-for-bit, so skipping the ``powf`` pass for the paper's default
    ``alpha = 1`` never changes an output.  ``out`` (an ``(n, n)`` float64
    buffer) receives the product when given, letting callers reuse one
    allocation across iterations; it doubles as the scratch for whichever
    power pass actually runs, so the common ``alpha = 1`` case performs no
    per-call allocation at all.
    """
    # lint: hot-region
    tau_p = tau if alpha == 1.0 else xp.power(tau, alpha, out=out)
    eta_scratch = out if tau_p is tau else None
    eta_p = eta if beta == 1.0 else xp.power(eta, beta, out=eta_scratch)
    if out is None:
        return tau_p * eta_p
    return xp.multiply(tau_p, eta_p, out=out)


def compute_choice_batch(tau, eta, alpha, beta, *, xp=np, out=None, eta_pow=None):
    """Batched :func:`compute_choice` with per-row ``(B,)`` exponent vectors.

    The fast path applies only when *every* row uses the identity exponent;
    mixed batches take the full ``power`` pass, which is still bit-identical
    row-for-row (``pow(x, 1.0) == x`` exactly).  ``eta_pow`` optionally
    supplies a precomputed ``eta ** beta`` — both factors are
    engine-constant, so callers with an arena hoist the (expensive) power
    pass out of the iteration entirely; the product is bit-identical.
    """
    # lint: hot-region
    # Engine-constant branch select: alpha/beta never change during a run,
    # so this scalar sync picks one code path, not per-iteration data.
    a_one = bool((alpha == 1.0).all())  # lint: ignore[host-sync]
    b_one = bool((beta == 1.0).all())  # lint: ignore[host-sync]
    tau_p = tau if a_one else xp.power(tau, alpha[:, None, None], out=out)
    if b_one:
        eta_p = eta
    elif eta_pow is not None:
        eta_p = eta_pow
    else:
        eta_scratch = out if a_one else None
        eta_p = xp.power(eta, beta[:, None, None], out=eta_scratch)
    if out is None:
        return tau_p * eta_p
    return xp.multiply(tau_p, eta_p, out=out)


class ChoiceKernel(Kernel):
    """n²-thread kernel filling the choice-info matrix.

    Each thread handles one matrix cell: coalesced loads of ``tau[i][j]``
    and ``d[i][j]``, two ``powf`` and one divide on the SFU path, one
    multiply, one coalesced store.
    """

    name = "choice_info"

    def __init__(self, block: int = 256) -> None:
        self.block = int(block)
        # Reused (B?, n, n) output buffer: choice_info is rebound every
        # iteration and nothing retains the previous matrix, so recycling
        # the allocation removes an n² (or B·n²) alloc per iteration.  When
        # the owning engine carries a WorkBuffers arena the buffer lives
        # there instead (one amortisation home per engine).
        self._buf = None
        self._buf_xp = None

    def _buffer(self, shape: tuple, xp, work=None):
        if work is not None:
            return work.get("choice.out", shape, np.float64)
        if self._buf is None or self._buf.shape != shape or self._buf_xp is not xp:
            self._buf = xp.empty(shape, dtype=np.float64)
            self._buf_xp = xp
        return self._buf

    def launch_config(self, device: DeviceSpec, *, n: int) -> LaunchConfig:
        block = min(self.block, device.max_threads_per_block)
        return LaunchConfig(grid=grid_for(n * n, block), block=block)

    # ---------------------------------------------------------------- run

    def run(self, state: ColonyState) -> StageReport:
        """Compute ``state.choice_info`` in place and account the kernel."""
        params = state.params
        xp = state.backend.xp
        choice = compute_choice(
            state.pheromone,
            state.eta,
            params.alpha,
            params.beta,
            xp=xp,
            out=self._buffer((state.n, state.n), xp, work=state.work),
        )
        diag = xp.arange(state.n)
        choice[diag, diag] = 0.0
        state.choice_info = choice

        stats, launch = self.predict_stats(state.n, state.device)
        return StageReport(stage="choice", kernel=self.name, stats=stats, launch=launch)

    def run_batch(self, bstate, collect: bool = True) -> list[StageReport]:
        """Refresh ``bstate.choice_info`` (``(B, n, n)``) for all colonies.

        One elementwise pass with per-row exponents — row ``b`` is
        bit-identical to the solo :meth:`run` on colony ``b``.
        ``collect=False`` skips report materialization (the amortized
        ``report_every`` loop) and returns an empty list.
        """
        xp = bstate.backend.xp
        wb = bstate.work
        eta_pow = None
        if wb is not None and not bool((bstate.beta == 1.0).all()):
            eta_pow = wb.cached(
                f"choice.eta_pow.{bstate.B}x{bstate.n}",
                lambda: xp.power(bstate.eta, bstate.beta[:, None, None]),
            )
        choice = compute_choice_batch(
            bstate.pheromone,
            bstate.eta,
            bstate.alpha,
            bstate.beta,
            xp=xp,
            out=self._buffer((bstate.B, bstate.n, bstate.n), xp, work=wb),
            eta_pow=eta_pow,
        )
        if wb is not None:
            diag = wb.cached(f"choice.diag.{bstate.n}", lambda: xp.arange(bstate.n))
        else:
            diag = xp.arange(bstate.n)
        choice[:, diag, diag] = 0.0
        bstate.choice_info = choice

        if not collect:
            return []
        stats, launch = self.predict_stats(bstate.n, bstate.device)
        report = StageReport(stage="choice", kernel=self.name, stats=stats, launch=launch)
        return [report] * bstate.B

    def predict_stats(
        self, n: int, device: DeviceSpec
    ) -> tuple[KernelStats, LaunchConfig]:
        """Closed-form ledger of one choice-kernel launch."""
        stats = KernelStats()
        launch = self.launch_config(device, n=n)
        self.record_launch(stats, launch)
        cells = float(n) * n
        gmem = GlobalMemory(device, stats)
        gmem.load(2.0 * cells, 4, AccessPattern.COALESCED)  # tau, dist
        gmem.store(cells, 4, AccessPattern.COALESCED)  # choice_info
        stats.special_ops += 3.0 * cells  # 2 powf + 1 divide (eta from d)
        stats.flops += cells  # product
        stats.int_ops += 2.0 * cells  # index arithmetic
        return stats, launch
