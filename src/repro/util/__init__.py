"""Small shared utilities: tables, statistics, timing, validation.

These helpers are deliberately dependency-light (numpy only) and are used by
every other subpackage.  Nothing in here knows about ACO, TSP or GPUs.
"""

from __future__ import annotations

from repro.util.stats import (
    geometric_mean,
    mean_and_std,
    monotone_fraction,
    relative_error,
    spearman_rank_correlation,
)
from repro.util.tables import Table, format_float, format_ms
from repro.util.timer import Timer, WallClock
from repro.util.validation import (
    check_in_range,
    check_positive,
    check_probability,
    check_square_matrix,
)

__all__ = [
    "Table",
    "format_float",
    "format_ms",
    "Timer",
    "WallClock",
    "geometric_mean",
    "mean_and_std",
    "monotone_fraction",
    "relative_error",
    "spearman_rank_correlation",
    "check_in_range",
    "check_positive",
    "check_probability",
    "check_square_matrix",
]
