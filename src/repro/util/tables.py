"""ASCII/markdown table rendering for experiment reports.

The experiment harness prints tables shaped exactly like the paper's
Tables II-IV (versions down the side, instances across the top), so this
module provides a tiny column-aligned table formatter with no third-party
dependencies.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["Table", "format_ms", "format_float", "format_speedup"]


def format_float(value: float, digits: int = 2) -> str:
    """Render a float with ``digits`` decimals, trimming '-0.00' artefacts."""
    text = f"{value:.{digits}f}"
    return "0." + "0" * digits if text == "-" + "0." + "0" * digits else text


def format_ms(value_s: float) -> str:
    """Render a duration in seconds as milliseconds the way the paper does.

    The paper prints between 2 decimals (small times) and whole numbers
    (huge times); we keep 2-4 significant figures depending on magnitude.
    """
    ms = value_s * 1e3
    if ms >= 1000.0:
        return f"{ms:.0f}"
    if ms >= 10.0:
        return f"{ms:.1f}"
    return f"{ms:.2f}"


def format_speedup(value: float) -> str:
    """Render a speed-up factor, e.g. ``'2.65x'``."""
    return f"{value:.2f}x"


class Table:
    """A column-aligned text table.

    Parameters
    ----------
    headers:
        Column titles.
    title:
        Optional caption printed above the table.

    Examples
    --------
    >>> t = Table(["version", "att48"], title="demo")
    >>> t.add_row(["baseline", "13.14"])
    >>> print(t.render())  # doctest: +ELLIPSIS
    demo...
    """

    def __init__(self, headers: Sequence[str], title: str | None = None) -> None:
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: list[list[str]] = []

    def add_row(self, cells: Iterable[object]) -> None:
        """Append a row; cells are stringified and must match the header count."""
        row = [str(c) for c in cells]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    def _widths(self) -> list[int]:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        return widths

    def render(self) -> str:
        """Render as a plain-text table with a header separator line."""
        widths = self._widths()

        def fmt(row: Sequence[str]) -> str:
            return "  ".join(cell.rjust(w) for cell, w in zip(row, widths))

        lines: list[str] = []
        if self.title:
            lines.append(self.title)
        lines.append(fmt(self.headers))
        lines.append("  ".join("-" * w for w in widths))
        lines.extend(fmt(r) for r in self.rows)
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """Render as a GitHub-flavoured markdown table (used for EXPERIMENTS.md)."""
        lines: list[str] = []
        if self.title:
            lines.append(f"**{self.title}**")
            lines.append("")
        lines.append("| " + " | ".join(self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
