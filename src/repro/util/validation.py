"""Argument-validation helpers shared across the package.

All helpers raise ``ValueError`` (or a caller-supplied exception type) with a
message that names the offending parameter, so API misuse fails loudly and
close to the call site.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_probability",
    "check_square_matrix",
]


def check_positive(name: str, value: float, exc: type[Exception] = ValueError) -> float:
    """Require ``value > 0``; returns the value for chaining."""
    if not value > 0:
        raise exc(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: float, exc: type[Exception] = ValueError) -> float:
    """Require ``value >= 0``; returns the value for chaining."""
    if value < 0:
        raise exc(f"{name} must be >= 0, got {value!r}")
    return value


def check_in_range(
    name: str,
    value: float,
    lo: float,
    hi: float,
    *,
    exc: type[Exception] = ValueError,
    lo_open: bool = False,
    hi_open: bool = False,
) -> float:
    """Require ``lo (<|<=) value (<|<=) hi``; returns the value for chaining."""
    lo_ok = value > lo if lo_open else value >= lo
    hi_ok = value < hi if hi_open else value <= hi
    if not (lo_ok and hi_ok):
        lo_b = "(" if lo_open else "["
        hi_b = ")" if hi_open else "]"
        raise exc(f"{name} must lie in {lo_b}{lo}, {hi}{hi_b}, got {value!r}")
    return value


def check_probability(name: str, value: float, exc: type[Exception] = ValueError) -> float:
    """Require ``0 <= value <= 1``; returns the value for chaining."""
    return check_in_range(name, value, 0.0, 1.0, exc=exc)


def check_square_matrix(name: str, matrix: np.ndarray, exc: type[Exception] = ValueError) -> np.ndarray:
    """Require a 2-D square numpy array; returns the array for chaining."""
    arr = np.asarray(matrix)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise exc(f"{name} must be a square 2-D matrix, got shape {arr.shape}")
    return arr
