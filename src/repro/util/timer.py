"""Wall-clock timing helpers.

The paper reports per-iteration kernel times averaged over 100 iterations;
:class:`Timer` supports exactly that pattern (accumulate laps, report mean),
while :class:`WallClock` is the context-manager form for one-shot sections.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Timer", "WallClock"]


@dataclass
class Timer:
    """Accumulating lap timer.

    Examples
    --------
    >>> t = Timer()
    >>> for _ in range(3):
    ...     with t.lap():
    ...         pass
    >>> t.count
    3
    >>> t.mean >= 0.0
    True
    """

    laps: list[float] = field(default_factory=list)

    def lap(self) -> "WallClock":
        """Return a context manager whose elapsed time is appended as a lap."""
        return WallClock(on_exit=self.laps.append)

    def add(self, seconds: float) -> None:
        """Record an externally measured lap (e.g. a modelled kernel time)."""
        if seconds < 0.0:
            raise ValueError("lap duration must be non-negative")
        self.laps.append(float(seconds))

    @property
    def count(self) -> int:
        return len(self.laps)

    @property
    def total(self) -> float:
        return float(sum(self.laps))

    @property
    def mean(self) -> float:
        """Mean lap duration; 0.0 when no laps were recorded."""
        return self.total / self.count if self.laps else 0.0

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile of the recorded laps (``0 <= p <= 100``).

        Linear interpolation between order statistics (numpy's default
        ``"linear"`` method); 0.0 when no laps were recorded.  This is the
        quantile rule the observability histograms
        (:class:`repro.obs.ReservoirHistogram`) share.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self.laps:
            return 0.0
        laps = sorted(self.laps)
        rank = (p / 100.0) * (len(laps) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(laps) - 1)
        frac = rank - lo
        return laps[lo] * (1.0 - frac) + laps[hi] * frac

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    def merge(self, other: "Timer") -> "Timer":
        """Fold ``other``'s laps into this timer (per-thread timers combine
        into one aggregate view); returns ``self`` for chaining."""
        self.laps.extend(other.laps)
        return self

    def reset(self) -> None:
        self.laps.clear()


class WallClock:
    """Context manager measuring wall-clock time with ``perf_counter``.

    Attributes
    ----------
    elapsed:
        Seconds between ``__enter__`` and ``__exit__`` (0 until exit).
    """

    def __init__(self, on_exit=None) -> None:
        self._on_exit = on_exit
        self.elapsed: float = 0.0
        self._start: float | None = None

    def __enter__(self) -> "WallClock":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        assert self._start is not None, "WallClock exited without entering"
        self.elapsed = time.perf_counter() - self._start
        if self._on_exit is not None:
            self._on_exit(self.elapsed)
