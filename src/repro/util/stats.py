"""Statistics helpers used by the experiment harness and shape checks.

The reproduction promises *shape* agreement with the paper rather than
absolute timing parity, so the primitives here are the ones shape checks
need: rank correlations between version orderings, relative errors in log
space, monotonicity fractions for trend assertions, and geometric means for
aggregating speed-up factors.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = [
    "geometric_mean",
    "mean_and_std",
    "relative_error",
    "log_ratio",
    "spearman_rank_correlation",
    "monotone_fraction",
    "crossover_index",
]


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of strictly positive values.

    Speed-up factors multiply, so aggregating them with a geometric mean is
    the standard choice (arithmetic means over-weight large ratios).

    Raises
    ------
    ValueError
        If ``values`` is empty or contains non-positive entries.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("geometric_mean of empty sequence")
    if np.any(arr <= 0.0):
        raise ValueError("geometric_mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(arr))))


def mean_and_std(values: Sequence[float]) -> tuple[float, float]:
    """Sample mean and (ddof=1) standard deviation; std is 0 for n < 2."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("mean_and_std of empty sequence")
    mean = float(arr.mean())
    std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
    return mean, std


def relative_error(measured: float, reference: float) -> float:
    """``|measured - reference| / |reference|``.

    Raises
    ------
    ValueError
        If ``reference`` is zero — a relative error is undefined there.
    """
    if reference == 0.0:
        raise ValueError("relative_error undefined for reference == 0")
    return abs(measured - reference) / abs(reference)


def log_ratio(measured: float, reference: float) -> float:
    """Natural-log ratio ``ln(measured / reference)``; symmetric error metric."""
    if measured <= 0.0 or reference <= 0.0:
        raise ValueError("log_ratio requires strictly positive operands")
    return float(np.log(measured / reference))


def _ranks(values: np.ndarray) -> np.ndarray:
    """Average ranks (1-based), handling ties the way Spearman's rho expects."""
    order = np.argsort(values, kind="stable")
    ranks = np.empty(len(values), dtype=np.float64)
    ranks[order] = np.arange(1, len(values) + 1, dtype=np.float64)
    # Average the ranks of tied groups.
    sorted_vals = values[order]
    i = 0
    while i < len(values):
        j = i
        while j + 1 < len(values) and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        if j > i:
            avg = ranks[order[i : j + 1]].mean()
            ranks[order[i : j + 1]] = avg
        i = j + 1
    return ranks


def spearman_rank_correlation(a: Sequence[float], b: Sequence[float]) -> float:
    """Spearman's rho between two equal-length sequences.

    Used to assert that the *ordering* of kernel versions produced by the
    model matches the ordering in the paper's tables (rho == 1.0 means the
    orderings agree exactly).
    """
    x = np.asarray(a, dtype=np.float64)
    y = np.asarray(b, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("spearman requires two 1-D sequences of equal length")
    if x.size < 2:
        raise ValueError("spearman requires at least two observations")
    rx, ry = _ranks(x), _ranks(y)
    rx -= rx.mean()
    ry -= ry.mean()
    denom = float(np.sqrt((rx @ rx) * (ry @ ry)))
    if denom == 0.0:
        return 1.0 if np.allclose(rx, ry) else 0.0
    return float((rx @ ry) / denom)


def monotone_fraction(values: Sequence[float], *, increasing: bool = True) -> float:
    """Fraction of consecutive pairs that move in the expected direction.

    1.0 means strictly monotone; used for trend assertions like "the
    scatter-to-gather slow-down grows with the instance size".
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.size < 2:
        raise ValueError("monotone_fraction requires at least two values")
    diffs = np.diff(arr)
    good = diffs > 0 if increasing else diffs < 0
    return float(np.count_nonzero(good)) / float(diffs.size)


def crossover_index(values: Sequence[float], threshold: float = 1.0) -> int | None:
    """Index of the first element strictly above ``threshold``.

    Figures 4(a) and 5 show speed-up curves that start below 1x (CPU wins)
    and cross above 1x as the instance grows; this helper locates that
    crossover.  Returns ``None`` when the curve never crosses.
    """
    arr = np.asarray(values, dtype=np.float64)
    above = np.nonzero(arr > threshold)[0]
    return int(above[0]) if above.size else None
