"""Fold per-shard stats/health payloads into one router-level payload.

The router's ``{"op": "stats"}`` answer must look like a single
service's :meth:`~repro.serve.service.ServiceStats.snapshot` — same
keys, same meanings — so dashboards built against one serve process read
a sharded deployment unchanged (the ``source`` field is how they tell
the tiers apart).  Counters sum exactly; per-bucket/per-variant/
flush-cause maps merge key-wise; derived rates are recomputed from the
summed numerators/denominators (never averaged averages); histograms
merge **losslessly** via :meth:`~repro.obs.ReservoirHistogram.from_snapshot`
+ :meth:`~repro.obs.ReservoirHistogram.merge` into an aggregator sized
to hold every shard's reservoir, so the aggregate ``count``/``total``/
``min``/``max`` equal the exact sums/extremes and quantiles are computed
over the union of all per-shard samples.

The verbose ``samples`` arrays are stripped from the *output* payload
(aggregate and per-shard alike) — they exist to make the fold lossless
on the worker→router hop, not to bloat the client-facing answer.
"""

from __future__ import annotations

from repro.obs import ReservoirHistogram

__all__ = ["COUNTER_KEYS", "HISTOGRAM_KEYS", "fold_health", "fold_stats"]

#: exact-sum integer counters of ServiceStats.snapshot()
COUNTER_KEYS = (
    "submitted",
    "completed",
    "resolved_by_target",
    "resolved_by_deadline",
    "failed",
    "requests_timed_out",
    "requests_shed",
    "requests_retried",
    "batches_bisected",
    "checkpoints_written",
    "batches",
    "rows_packed",
    "ls_batches",
    "colony_iterations",
)

#: key-wise summed dict counters
_DICT_KEYS = ("batches_per_variant", "rows_per_bucket", "flush_causes")

#: reservoir-histogram distributions
HISTOGRAM_KEYS = (
    "queue_wait_seconds",
    "batch_wall_seconds",
    "request_latency_seconds",
    "batch_rows",
)


def _strip_samples(hist_snap: dict) -> dict:
    out = dict(hist_snap)
    out.pop("samples", None)
    return out


def fold_stats(per_shard: dict[int, dict], router: dict | None = None) -> dict:
    """One service-shaped aggregate over per-shard snapshot payloads.

    ``per_shard`` maps shard id → that worker's
    :meth:`~repro.serve.service.ServiceStats.snapshot` payload (scraped
    off its wire); ``router`` is the router's own counter block, passed
    through under the ``"router"`` key.
    """
    shards = [per_shard[k] for k in sorted(per_shard)]
    agg: dict = {"source": "router"}
    for key in COUNTER_KEYS:
        agg[key] = sum(int(s.get(key, 0)) for s in shards)
    for key in _DICT_KEYS:
        merged: dict = {}
        for s in shards:
            for k, v in (s.get(key) or {}).items():
                merged[k] = merged.get(k, 0) + v
        agg[key] = dict(sorted(merged.items()))
    engine_wall = sum(float(s.get("engine_wall_seconds", 0.0)) for s in shards)
    agg["engine_wall_seconds"] = round(engine_wall, 6)
    agg["mean_batch_size"] = round(
        agg["rows_packed"] / agg["batches"] if agg["batches"] else 0.0, 3
    )
    agg["colonies_per_second"] = round(
        agg["colony_iterations"] / engine_wall if engine_wall > 0.0 else 0.0, 3
    )
    for key in HISTOGRAM_KEYS:
        snaps = [s[key] for s in shards if isinstance(s.get(key), dict)]
        capacity = max(
            512, sum(len(snap.get("samples", ())) for snap in snaps)
        )
        folded = ReservoirHistogram(key, max_samples=capacity)
        for snap in snaps:
            folded.merge(ReservoirHistogram.from_snapshot(snap))
        agg[key] = _strip_samples(folded.snapshot())
    agg["per_shard"] = {
        str(sid): {
            k: (_strip_samples(v) if k in HISTOGRAM_KEYS else v)
            for k, v in per_shard[sid].items()
        }
        for sid in sorted(per_shard)
    }
    agg["router"] = dict(router or {})
    return agg


def fold_health(per_shard: dict[int, dict], shard_summaries: dict[int, dict],
                router: dict | None = None) -> dict:
    """One liveness payload over per-shard health probes.

    ``per_shard`` holds the live ``{"op": "health"}`` answers of the
    shards that responded; ``shard_summaries`` the router-side
    :meth:`~repro.shard.supervisor.WorkerShard.summary` for **every**
    shard (dead ones included — the whole point of a health plane).
    """
    live = [per_shard[k] for k in sorted(per_shard)]
    out: dict = {
        "source": "router",
        "shards": len(shard_summaries),
        "shards_healthy": sum(
            1 for s in shard_summaries.values() if s.get("state") == "healthy"
        ),
        "accepting": any(h.get("accepting") for h in live),
        "queued": sum(int(h.get("queued", 0)) for h in live),
        "inflight_batches": sum(int(h.get("inflight_batches", 0)) for h in live),
        "workers_alive": sum(int(h.get("workers_alive", 0)) for h in live),
    }
    ages = [
        h.get("last_batch_age_seconds")
        for h in live
        if h.get("last_batch_age_seconds") is not None
    ]
    out["last_batch_age_seconds"] = min(ages) if ages else None
    out["per_shard"] = {
        str(sid): dict(shard_summaries[sid]) for sid in sorted(shard_summaries)
    }
    out["router"] = dict(router or {})
    return out
