"""Per-shard process lifecycle: spawn, ready-handshake, trunk, teardown.

A :class:`WorkerShard` is the router's handle on one worker process: the
``multiprocessing.Process`` itself, the readiness pipe, the **trunk**
(the router's one pipelined client connection to the worker's TCP wire),
and the router-side routing state the scorer reads (outstanding count,
last health sample).  The router owns all mutation from its event loop;
the only off-loop work is ``Process.join``, pushed to the default
executor so a slow worker exit never blocks routing.

States: ``starting`` (spawned, pre-handshake) → ``healthy`` (trunk up)
→ ``restarting`` (planned drain: SIGTERM sent, EOF expected — no
failover) or ``dead`` (unplanned EOF/kill — failover path) → respawn
cycles back to ``healthy`` with a fresh process and generation counter.
"""

from __future__ import annotations

import asyncio
import multiprocessing as mp

from repro.errors import ServeError
from repro.shard.worker import ShardConfig, worker_main

__all__ = ["WorkerShard"]

#: long-lived process spawns include a full interpreter + numpy import
_READY_POLL_SECONDS = 0.02


class WorkerShard:
    """One worker process from the router's point of view.

    All attributes are mutated from the router's event loop only
    (``guarded-by: loop``); the scorer and the stats plane read them
    from the same loop.
    """

    def __init__(
        self, shard_id: int, config: ShardConfig, *, ready_timeout: float = 60.0
    ) -> None:
        self.id = shard_id
        self.config = config
        self.ready_timeout = ready_timeout
        self.state = "starting"  # guarded-by: loop
        self.generation = 0  # guarded-by: loop — bumps on every (re)spawn
        self.process: mp.Process | None = None  # guarded-by: loop
        self.port: int | None = None  # guarded-by: loop
        self.pid: int | None = None  # guarded-by: loop
        self.reader: asyncio.StreamReader | None = None  # guarded-by: loop
        self.writer: asyncio.StreamWriter | None = None  # guarded-by: loop
        self.trunk_lock = asyncio.Lock()
        self.outstanding = 0  # guarded-by: loop — requests routed, unresolved
        self.routed_total = 0  # guarded-by: loop
        self.health_sample: dict | None = None  # guarded-by: loop
        self.probe_failures = 0  # guarded-by: loop

    # ------------------------------------------------------------- lifecycle

    async def spawn(self) -> None:
        """Start the worker process and connect the trunk.

        The ready handshake is polled asynchronously (spawned children
        pay a full interpreter + numpy import before they can answer),
        then the trunk connects to the reported ephemeral port.
        """
        ctx = mp.get_context("spawn")
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=worker_main,
            args=(self.id, self.config, child_conn),
            name=f"aco-shard-{self.id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        try:
            ready = await self._await_ready(parent_conn, process)
        finally:
            parent_conn.close()
        self.process = process
        self.port = int(ready["port"])
        self.pid = int(ready["pid"])
        self.generation += 1
        self.reader, self.writer = await asyncio.open_connection(
            self.config.host, self.port
        )
        self.health_sample = None
        self.probe_failures = 0
        self.outstanding = 0
        self.state = "healthy"

    async def _await_ready(self, conn, process: mp.Process) -> dict:
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.ready_timeout
        while not conn.poll(0):
            if not process.is_alive():
                raise ServeError(
                    f"shard {self.id} worker died before reporting ready "
                    f"(exitcode {process.exitcode})"
                )
            if loop.time() > deadline:
                process.kill()
                raise ServeError(
                    f"shard {self.id} worker not ready within "
                    f"{self.ready_timeout}s"
                )
            await asyncio.sleep(_READY_POLL_SECONDS)
        return conn.recv()

    def terminate(self) -> None:
        """SIGTERM → the worker's graceful drain (planned shutdown)."""
        if self.process is not None and self.process.is_alive():
            self.process.terminate()

    def kill(self) -> None:
        """SIGKILL — immediate, ungraceful (chaos / unresponsive worker)."""
        if self.process is not None and self.process.is_alive():
            self.process.kill()

    async def wait_exit(self, timeout: float | None = None) -> None:
        """Await process exit without blocking the loop (executor join)."""
        process = self.process
        if process is None:
            return
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, process.join, timeout)

    async def close_trunk(self) -> None:
        writer, self.writer, self.reader = self.writer, None, None
        if writer is None:
            return
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

    # --------------------------------------------------------------- scoring

    def score(self) -> float:
        """Load estimate for spill decisions: the router's own live view
        (routed-but-unresolved requests) plus the worker's last health
        probe (queued + in-flight batches) — probe data ages between
        prober ticks, the outstanding count never does."""
        probed = 0.0
        sample = self.health_sample
        if sample:
            probed = float(
                sample.get("queued", 0) + sample.get("inflight_batches", 0)
            )
        return self.outstanding + probed

    def summary(self) -> dict:
        """Per-shard block of the router's health payload."""
        sample = self.health_sample or {}
        return {
            "state": self.state,
            "pid": self.pid,
            "port": self.port,
            "generation": self.generation,
            "outstanding": self.outstanding,
            "routed_total": self.routed_total,
            "probe_failures": self.probe_failures,
            "queued": sample.get("queued"),
            "inflight_batches": sample.get("inflight_batches"),
            "workers_alive": sample.get("workers_alive"),
            "last_batch_age_seconds": sample.get("last_batch_age_seconds"),
        }
