"""Multi-process sharded serving: a router tier over N worker shards.

The ROADMAP's "millions of users" spine: one asyncio front **router**
speaking the same JSON-lines TCP wire as ``gpu-aco serve``, hashing each
request's :class:`~repro.serve.service.BatchKey` to one of N long-lived
worker **processes**, each running today's
:class:`~repro.serve.service.SolveService` end-to-end.  Process shards
step around the GIL ceiling that caps numpy-backend throughput in a
single serve process.

Layers (one module each):

* :mod:`repro.shard.shm` — shared-memory instance cache: inline
  coordinate instances are serialized into ``multiprocessing.shared_memory``
  once per distinct :func:`~repro.core.checkpoint.instance_digest`, and
  workers attach by digest instead of re-parsing coords per shard.
* :mod:`repro.shard.worker` — the child-process entry point: build a
  ``SolveService`` from a picklable :class:`~repro.shard.worker.ShardConfig`,
  serve the standard wire on an ephemeral port, report the port through a
  pipe, drain gracefully on SIGTERM.
* :mod:`repro.shard.supervisor` — one :class:`~repro.shard.supervisor.WorkerShard`
  per worker: spawn/ready-handshake/trunk-connect/terminate/kill lifecycle.
* :mod:`repro.shard.router` — :class:`~repro.shard.router.ShardRouter`:
  BatchKey-hash routing with health-scored spill to the least-loaded
  healthy shard, failover (dead shard → re-route + respawn), rolling
  drain/restart, router-level shedding, and
  :func:`~repro.shard.router.serve_router_tcp`, the client-facing front.
* :mod:`repro.shard.stats` — fold per-shard
  :meth:`~repro.serve.service.ServiceStats.snapshot` payloads (exact
  counter sums + lossless :class:`~repro.obs.ReservoirHistogram` merges)
  into one router-level ``{"op": "stats"}`` payload.

``gpu-aco serve --shards N`` is the CLI surface; ``N=0`` keeps the
single-process in-process path byte-for-byte.
"""

from __future__ import annotations

from repro.shard.router import ShardRouter, serve_router_tcp, shard_index
from repro.shard.shm import InstanceShmCache, resolve_shared_instance
from repro.shard.stats import fold_health, fold_stats
from repro.shard.supervisor import WorkerShard
from repro.shard.worker import ShardConfig, worker_main

__all__ = [
    "InstanceShmCache",
    "ShardConfig",
    "ShardRouter",
    "WorkerShard",
    "fold_health",
    "fold_stats",
    "resolve_shared_instance",
    "serve_router_tcp",
    "shard_index",
    "worker_main",
]
