"""The shard router: BatchKey-hash routing over N worker processes.

One asyncio process owns N :class:`~repro.shard.supervisor.WorkerShard`
workers and speaks the standard JSON-lines wire to clients
(:func:`serve_router_tcp` — byte-compatible with ``gpu-aco serve``, so
every existing client/CLI works unchanged).  Per request:

1. decode + validate exactly like a single server (errors become
   ``error`` lines here, without burning a worker round-trip);
2. publish inline coordinate instances into the shared-memory cache
   (:mod:`repro.shard.shm`) so equal instances serialize once, not per
   shard;
3. route by a **stable hash** of the request's
   :class:`~repro.serve.service.BatchKey` — equal-geometry requests land
   on the same shard, preserving the micro-batcher's packing density —
   unless the primary is dead or scoring past ``spill_threshold``, in
   which case the request spills to the least-loaded healthy shard
   (scored from each worker's ``{"op": "health"}`` probe + the router's
   own outstanding counts);
4. forward over the shard's **trunk** (one pipelined connection per
   worker) under a router-assigned wire id, relay ``update``/``result``/
   ``error`` lines back under the client's id.

Failover: a worker death surfaces as trunk EOF.  The router respawns the
shard (``shards_respawned``) and re-forwards every outstanding request
that died with it — full deterministic re-runs, so the client still
receives the bit-identical result (updates may replay: delivery is
at-least-once, results exactly-once).  A seeded
:class:`~repro.serve.faults.FaultPlan.kill_workers` schedule drives this
deterministically in tests.  Load shedding: router-level ``max_routed``
backpressure plus verbatim propagation of worker
:class:`~repro.errors.ServiceOverloadedError` error lines.

Thread model: everything here is event-loop-confined (``guarded-by:
loop``); the only off-loop work is ``Process.join`` inside
:meth:`~repro.shard.supervisor.WorkerShard.wait_exit`'s executor call.
"""

from __future__ import annotations

import asyncio
import hashlib
import itertools
import json

from repro.errors import ReproError, ServeError, ServiceOverloadedError
from repro.obs import MetricsRegistry
from repro.serve.faults import FaultInjector, FaultPlan
from repro.serve.protocol import (
    DEFAULT_MAX_LINE_BYTES,
    _encode_accepted,
    _encode_error,
    _encode_health,
    _encode_stats,
    _parse_line,
    _read_wire_line,
    decode_request_obj,
    encode_request,
    health_over_tcp,
    stats_over_tcp,
)
from repro.serve.service import BatchKey, SolveRequest
from repro.shard.shm import InstanceShmCache
from repro.shard.stats import fold_health, fold_stats
from repro.shard.supervisor import WorkerShard
from repro.shard.worker import ShardConfig

__all__ = ["ShardRouter", "serve_router_tcp", "shard_index"]

_PROBE_NET = {"connect_timeout": 2.0, "read_timeout": 5.0}


def shard_index(key: BatchKey, nshards: int) -> int:
    """Stable shard assignment for a bucket key.

    A content hash, not builtin ``hash()`` — str hashing is salted per
    process, and routing must be reproducible across router restarts for
    tests and capacity reasoning alike.
    """
    digest = hashlib.sha256(repr(tuple(key)).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % nshards


class _ClientSession:
    """One client connection's write side, shared by its relays."""

    __slots__ = ("writer", "lock", "alive")

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.lock = asyncio.Lock()
        self.alive = True

    async def send(self, data: bytes) -> None:
        if not self.alive:
            return
        async with self.lock:
            if self.writer.is_closing():
                self.alive = False
                return
            try:
                self.writer.write(data)
                await self.writer.drain()
            except (ConnectionResetError, BrokenPipeError, OSError):
                # Closing a client connection never cancels accepted work
                # (same contract as the single-process wire); remaining
                # responses for this session are dropped here.
                self.alive = False


class _Routed:
    """Router book-keeping for one in-flight forwarded request."""

    __slots__ = ("wid", "req_id", "key", "wire", "session", "shard_id", "reroutes")

    def __init__(
        self,
        wid: str,
        req_id: str,
        key: BatchKey,
        wire: bytes,
        session: _ClientSession,
    ) -> None:
        self.wid = wid
        self.req_id = req_id
        self.key = key
        self.wire = wire
        self.session = session
        self.shard_id = -1
        self.reroutes = 0


class ShardRouter:
    """Supervisor + router over N worker-process shards.

    Parameters
    ----------
    shards:
        Worker-process count (>= 1).
    config:
        Per-worker :class:`~repro.shard.worker.ShardConfig` (service
        knobs, backend/device names); one shared config for all shards.
    faults:
        Optional :class:`~repro.serve.faults.FaultPlan`: the router honours
        ``kill_workers`` (SIGKILL the target shard after forwarding the
        scheduled routed-request ordinals) and passes nothing to workers —
        worker-level fault injection stays a worker constructor concern.
    spill_threshold:
        Primary-shard score (queued + in-flight + outstanding) at or above
        which a request overflows to the least-loaded healthy shard.
    max_routed:
        Router-level backpressure bound on outstanding forwarded requests;
        submissions past it are answered with
        :class:`~repro.errors.ServiceOverloadedError` (the same error type
        a worker's own shedding propagates through the router verbatim).
    health_interval:
        Seconds between background ``{"op": "health"}`` probe rounds.
    max_reroutes:
        Times one request may fail over before the router gives up and
        answers with an ``error`` line.
    """

    def __init__(
        self,
        shards: int,
        config: ShardConfig | None = None,
        *,
        faults: FaultPlan | FaultInjector | None = None,
        spill_threshold: float = 16.0,
        max_routed: int = 1024,
        health_interval: float = 0.25,
        max_reroutes: int = 2,
        ready_timeout: float = 60.0,
    ) -> None:
        if shards < 1:
            raise ServeError(f"shards must be >= 1, got {shards}")
        if max_routed < 1:
            raise ServeError(f"max_routed must be >= 1, got {max_routed}")
        self.config = config or ShardConfig()
        plan = faults.plan if isinstance(faults, FaultInjector) else faults
        self._fault_plan: FaultPlan | None = plan
        self.spill_threshold = float(spill_threshold)
        self.max_routed = max_routed
        self.health_interval = float(health_interval)
        self.max_reroutes = max_reroutes
        self.shards = [
            WorkerShard(i, self.config, ready_timeout=ready_timeout)
            for i in range(shards)
        ]
        self.metrics = MetricsRegistry()
        self._requests_routed = self.metrics.counter("router.requests_routed")
        self._shards_respawned = self.metrics.counter("router.shards_respawned")
        self._spillovers = self.metrics.counter("router.spillovers")
        self._shed = self.metrics.counter("router.requests_shed")
        self._shm = InstanceShmCache()
        self._outstanding: dict[str, _Routed] = {}  # guarded-by: loop
        self._wid_seq = itertools.count()
        self._route_ordinal = 0  # guarded-by: loop — FaultPlan addressing
        self._accepting = False  # guarded-by: loop
        self._closing = False  # guarded-by: loop
        self._readers: dict[int, asyncio.Task] = {}  # guarded-by: loop
        self._prober: asyncio.Task | None = None

    # ------------------------------------------------------------- lifecycle

    async def start(self) -> "ShardRouter":
        """Spawn every shard, connect trunks, start readers + prober."""
        try:
            for shard in self.shards:
                await shard.spawn()
                self._start_reader(shard)
        except BaseException:
            await self.stop()
            raise
        self._prober = asyncio.create_task(
            self._probe_loop(), name="aco-router-prober"
        )
        self._accepting = True
        return self

    async def __aenter__(self) -> "ShardRouter":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.drain()

    async def drain(self) -> None:
        """Graceful shutdown: refuse new work, let workers finish what was
        accepted (results relay as usual), then stop the fleet."""
        self._accepting = False
        while self._outstanding and any(
            s.state in ("healthy", "starting") for s in self.shards
        ):
            await asyncio.sleep(0.02)
        await self.stop()

    async def stop(self) -> None:
        """Tear the fleet down: SIGTERM every worker (graceful drain in the
        worker), escalate to SIGKILL on a hung exit, release shared memory.
        Outstanding requests that can no longer complete are answered with
        error lines.  Idempotent."""
        if self._closing:
            return
        self._closing = True
        self._accepting = False
        if self._prober is not None:
            self._prober.cancel()
            self._prober = None
        for shard in self.shards:
            shard.terminate()
        for shard in self.shards:
            await shard.wait_exit(timeout=10.0)
            shard.kill()  # escalate if the graceful exit hung
            await shard.wait_exit(timeout=5.0)
            await shard.close_trunk()
            shard.state = "dead"
        for task in list(self._readers.values()):
            task.cancel()
        self._readers.clear()
        orphans, self._outstanding = list(self._outstanding.values()), {}
        for routed in orphans:
            await routed.session.send(
                _encode_error(
                    routed.req_id,
                    ServeError("router stopped before the request resolved"),
                )
            )
        self._shm.close()

    @property
    def accepting(self) -> bool:
        return self._accepting

    @property
    def outstanding(self) -> int:
        return len(self._outstanding)

    async def rolling_restart(self) -> None:
        """Drain/restart shards one at a time, fleet staying up throughout.

        Each shard is SIGTERMed (its service finishes accepted work and
        streams the results over the trunk before exiting — nothing is
        re-routed), awaited, respawned, and re-marked healthy before the
        next one goes down.
        """
        for shard in self.shards:
            if self._closing:
                return
            shard.state = "restarting"
            shard.terminate()
            await shard.wait_exit()
            await shard.close_trunk()
            reader = self._readers.pop(shard.id, None)
            if reader is not None:
                reader.cancel()
            if self._closing:
                return
            await shard.spawn()
            self._start_reader(shard)

    # --------------------------------------------------------------- routing

    def _healthy(self) -> list[WorkerShard]:
        return [s for s in self.shards if s.state == "healthy"]

    def _pick_shard(self, key: BatchKey) -> tuple[WorkerShard, bool]:
        """Primary-by-hash with overflow/failover spill; ``(shard, spilled)``.

        Raises :class:`~repro.errors.ServiceOverloadedError` when no shard
        is healthy (a dying fleet sheds rather than queues blind).
        """
        healthy = self._healthy()
        if not healthy:
            raise ServiceOverloadedError(
                "no healthy shards (fleet down or mid-respawn); retry"
            )
        primary = self.shards[shard_index(key, len(self.shards))]
        if primary.state == "healthy" and primary.score() < self.spill_threshold:
            return primary, False
        spill = min(healthy, key=lambda s: (s.score(), s.id))
        return spill, spill is not primary and primary.state == "healthy"

    async def _forward(self, routed: _Routed) -> None:
        """Write one request down a chosen shard's trunk, with bounded
        retargeting if the shard dies under the write."""
        for _attempt in range(len(self.shards) + 1):
            shard, spilled = self._pick_shard(routed.key)
            try:
                async with shard.trunk_lock:
                    if shard.state != "healthy" or shard.writer is None:
                        continue  # died while we awaited the lock
                    shard.writer.write(routed.wire)
                    await shard.writer.drain()
            except (ConnectionResetError, BrokenPipeError, OSError):
                # Trunk broke mid-write: the reader task drives the actual
                # failover; retarget this request right away.
                if shard.state == "healthy":
                    shard.state = "dead"
                continue
            routed.shard_id = shard.id
            shard.outstanding += 1
            shard.routed_total += 1
            if spilled:
                self._spillovers.inc()
            return
        raise ServiceOverloadedError("no shard accepted the request; retry")

    def _instance_wire_form(self, raw_instance: object, request: SolveRequest):
        """Suite stubs pass through; coordinate instances ride shared
        memory (falling back to inline coords when they can't)."""
        if isinstance(raw_instance, dict) and "suite" in raw_instance:
            return {"suite": raw_instance["suite"]}
        return self._shm.wire_form(request.instance)

    async def submit(
        self,
        raw_obj: dict,
        req_id: str,
        request: SolveRequest,
        session: _ClientSession,
    ) -> None:
        """Route one decoded solve request; sends ``accepted`` on success.

        Raises :class:`~repro.errors.ReproError` subclasses for the caller
        to turn into ``error`` lines (closed router, shed load, no healthy
        shard).
        """
        if not self._accepting:
            raise ServeError("router is draining; no new requests")
        if len(self._outstanding) >= self.max_routed:
            self._shed.inc()
            raise ServiceOverloadedError(
                f"router at max_routed={self.max_routed} outstanding requests"
            )
        wid = f"x{next(self._wid_seq)}"
        wire = encode_request(
            request,
            wid,
            instance_obj=self._instance_wire_form(raw_obj.get("instance"), request),
        )
        routed = _Routed(wid, req_id, request.bucket_key, wire, session)
        self._outstanding[wid] = routed
        try:
            await self._forward(routed)
        except BaseException:
            self._outstanding.pop(wid, None)
            raise
        ordinal = self._route_ordinal
        self._route_ordinal += 1
        self._requests_routed.inc()
        await session.send(_encode_accepted(req_id))
        plan = self._fault_plan
        if plan is not None and ordinal in plan.kill_workers:
            # Deterministic chaos: SIGKILL the shard this request landed
            # on, after the forward — real process death, mid-burst.
            self.shards[routed.shard_id].kill()

    # ----------------------------------------------------------- trunk relay

    def _start_reader(self, shard: WorkerShard) -> None:
        self._readers[shard.id] = asyncio.create_task(
            self._trunk_reader(shard, shard.generation),
            name=f"aco-router-trunk-{shard.id}",
        )

    async def _trunk_reader(self, shard: WorkerShard, generation: int) -> None:
        """Relay one worker's response stream; EOF triggers failover."""
        reader = shard.reader
        assert reader is not None
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionResetError, BrokenPipeError, OSError):
                    break
                if not line:
                    break
                await self._relay(shard, line)
        except asyncio.CancelledError:
            raise
        finally:
            if not self._closing and shard.generation == generation:
                await self._on_trunk_down(shard)

    async def _relay(self, shard: WorkerShard, line: bytes) -> None:
        try:
            obj = json.loads(line)
        except (json.JSONDecodeError, UnicodeDecodeError):
            return  # a worker never sends garbage; drop defensively
        kind = obj.get("type")
        if kind == "accepted":
            return  # the router already accepted under the client id
        routed = self._outstanding.get(str(obj.get("id")))
        if routed is None:
            return  # resolved elsewhere (e.g. re-routed) or unknown
        obj["id"] = routed.req_id
        if kind in ("result", "error"):
            del self._outstanding[routed.wid]
            if 0 <= routed.shard_id < len(self.shards):
                target = self.shards[routed.shard_id]
                target.outstanding = max(0, target.outstanding - 1)
        await routed.session.send((json.dumps(obj) + "\n").encode("utf-8"))

    async def _on_trunk_down(self, shard: WorkerShard) -> None:
        """A worker went away: planned restarts just mark state; unplanned
        deaths respawn the shard and re-forward its outstanding requests."""
        planned = shard.state == "restarting"
        if not planned:
            shard.state = "dead"
        await shard.close_trunk()
        orphans = [
            r for r in self._outstanding.values() if r.shard_id == shard.id
        ]
        if planned:
            return  # rolling_restart owns the respawn
        self._readers.pop(shard.id, None)
        await shard.wait_exit(timeout=10.0)
        if self._closing:
            return
        try:
            await shard.spawn()
        except ServeError as exc:
            for routed in orphans:
                self._outstanding.pop(routed.wid, None)
                await routed.session.send(_encode_error(routed.req_id, exc))
            return
        self._start_reader(shard)
        self._shards_respawned.inc()
        for routed in orphans:
            if routed.wid not in self._outstanding:
                continue  # resolved while we respawned
            routed.reroutes += 1
            if routed.reroutes > self.max_reroutes:
                del self._outstanding[routed.wid]
                await routed.session.send(
                    _encode_error(
                        routed.req_id,
                        ServeError(
                            f"request failed over {routed.reroutes} times "
                            "without completing"
                        ),
                    )
                )
                continue
            try:
                await self._forward(routed)
            except ReproError as exc:
                del self._outstanding[routed.wid]
                await routed.session.send(_encode_error(routed.req_id, exc))

    # ------------------------------------------------------------- observers

    async def _probe_loop(self) -> None:
        """Background health sampling: feeds the spill scorer and the
        aggregated health payload."""
        while True:
            await asyncio.sleep(self.health_interval)
            await asyncio.gather(
                *(self._probe(s) for s in self.shards if s.state == "healthy"),
                return_exceptions=True,
            )

    async def _probe(self, shard: WorkerShard) -> None:
        generation = shard.generation
        try:
            sample = await health_over_tcp(
                self.config.host, shard.port, **_PROBE_NET
            )
        except (ServeError, OSError):
            if shard.generation == generation:
                shard.probe_failures += 1
            return
        if shard.generation == generation and shard.state == "healthy":
            shard.health_sample = sample

    def _router_block(self) -> dict:
        return {
            "requests_routed": self._requests_routed.value,
            "shards_respawned": self._shards_respawned.value,
            "spillovers": self._spillovers.value,
            "requests_shed": self._shed.value,
            "shards": len(self.shards),
            "shards_healthy": len(self._healthy()),
            "outstanding": len(self._outstanding),
        }

    async def stats_payload(self) -> dict:
        """The router's ``{"op": "stats"}`` answer: live per-shard scrapes
        folded into one service-shaped aggregate (see
        :func:`~repro.shard.stats.fold_stats`)."""
        shards = self._healthy()
        scrapes = await asyncio.gather(
            *(
                stats_over_tcp(self.config.host, s.port, **_PROBE_NET)
                for s in shards
            ),
            return_exceptions=True,
        )
        per_shard = {
            s.id: snap
            for s, snap in zip(shards, scrapes)
            if isinstance(snap, dict)
        }
        return fold_stats(per_shard, router=self._router_block())

    async def health_payload(self) -> dict:
        """The router's ``{"op": "health"}`` answer (every shard appears,
        dead ones included)."""
        shards = self._healthy()
        probes = await asyncio.gather(
            *(
                health_over_tcp(self.config.host, s.port, **_PROBE_NET)
                for s in shards
            ),
            return_exceptions=True,
        )
        per_shard = {
            s.id: snap
            for s, snap in zip(shards, probes)
            if isinstance(snap, dict)
        }
        summaries = {s.id: s.summary() for s in self.shards}
        return fold_health(per_shard, summaries, router=self._router_block())


# ------------------------------------------------------------------ TCP front


async def _handle_router_connection(
    router: ShardRouter,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """Same wire contract as the single-process handler, minus local solve:
    admin ops answer from the fold, solve lines route to shards."""
    session = _ClientSession(writer)
    counter = 0
    try:
        while True:
            line, discarded = await _read_wire_line(reader)
            if discarded:
                counter += 1
                await session.send(
                    _encode_error(
                        None,
                        ServeError(
                            f"line too long ({discarded} bytes discarded); "
                            "one request per newline-terminated line"
                        ),
                    )
                )
                continue
            if not line:  # EOF
                break
            if not line.strip():
                continue
            counter += 1
            req_id: str | None = None
            try:
                obj = _parse_line(line)
                if "op" in obj:
                    op = str(obj["op"])
                    op_id = str(obj.get("id", f"req-{counter}"))
                    if op == "stats":
                        payload = _encode_stats(
                            op_id, await router.stats_payload()
                        )
                    elif op == "health":
                        payload = _encode_health(
                            op_id, await router.health_payload()
                        )
                    else:
                        raise ServeError(
                            f"unknown op {op!r} (supported: 'stats', 'health')"
                        )
                    await session.send(payload)
                    continue
                req_id, request = decode_request_obj(
                    obj, default_id=f"req-{counter}"
                )
                await router.submit(obj, req_id, request, session)
            except ReproError as exc:
                await session.send(
                    _encode_error(getattr(exc, "req_id", req_id), exc)
                )
                continue
    except (ConnectionResetError, BrokenPipeError):
        pass
    finally:
        session.alive = False
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


async def serve_router_tcp(
    router: ShardRouter,
    host: str = "127.0.0.1",
    port: int = 8642,
    *,
    max_line_bytes: int = DEFAULT_MAX_LINE_BYTES,
) -> asyncio.AbstractServer:
    """Start the client-facing JSON-lines front on a started router.

    Same contract as :func:`~repro.serve.protocol.serve_tcp` (ephemeral
    ``port=0``, per-line cap with surviving connections); the caller owns
    both lifetimes — close the server, then ``await router.drain()``.
    """
    if max_line_bytes < 1:
        raise ServeError(f"max_line_bytes must be >= 1, got {max_line_bytes}")

    async def handler(reader, writer):
        try:
            await _handle_router_connection(router, reader, writer)
        except asyncio.CancelledError:
            writer.close()

    return await asyncio.start_server(handler, host, port, limit=max_line_bytes)
