"""Worker-process entry point for the shard tier.

A worker is *today's* serve stack, unchanged: one
:class:`~repro.serve.service.SolveService` behind the standard
JSON-lines TCP wire (:func:`~repro.serve.protocol.serve_tcp`) on an
ephemeral loopback port.  The only shard-specific pieces are the
lifecycle edges:

* **Config** crosses the process boundary as a :class:`ShardConfig` of
  primitives (backend by registry name, device by key) — ``spawn``
  pickles the entry point's arguments, and backend/device objects don't
  pickle.
* **Readiness** is a one-shot ``{"shard": i, "port": p, "pid": ...}``
  message through a ``multiprocessing.Pipe``; the supervisor connects
  its trunk to that port.
* **Shutdown** is SIGTERM → the service's graceful drain (queued
  requests flush, in-flight batches finish, streams terminate) — the
  same path ``gpu-aco serve`` takes on Ctrl-C, so a rolling restart
  loses nothing it accepted.  SIGKILL (chaos, OOM) skips all of this and
  is the router's failover problem.

``worker_main`` must stay a plain module-level function: the ``spawn``
start method re-imports ``__main__`` in the child, so the entry point
has to be importable by dotted path, never a closure.
"""

from __future__ import annotations

import asyncio
import signal
from dataclasses import dataclass

__all__ = ["ShardConfig", "worker_main"]


@dataclass(frozen=True)
class ShardConfig:
    """Picklable per-worker service construction knobs (primitives only).

    Mirrors the :class:`~repro.serve.service.SolveService` constructor;
    ``backend`` is a registry name (``None`` = environment default) and
    ``device`` a :data:`~repro.simt.device.DEVICES` key, both resolved
    inside the worker process.
    """

    host: str = "127.0.0.1"
    max_batch: int = 8
    max_wait: float = 0.05
    workers: int = 1
    max_pending: int = 256
    retry_budget: int = 3
    retry_backoff: float = 0.05
    retry_jitter_seed: int = 0
    backend: str | None = None
    device: str = "m2050"
    checkpoint_dir: str | None = None
    amortize: bool = True
    max_line_bytes: int = 1 << 20


async def _worker_amain(shard_id: int, config: ShardConfig, conn) -> None:
    """Build the service, serve the wire, report readiness, await SIGTERM."""
    # lint: worker-thread — runs in the worker process, off the router's
    # loop: router state marked `guarded-by: loop` must never be touched
    # from here (it crosses a process boundary, not just a thread one).
    from repro.backend import resolve_backend
    from repro.serve import SolveService, serve_tcp
    from repro.simt.device import DEVICES

    service = SolveService(
        max_batch=config.max_batch,
        max_wait=config.max_wait,
        workers=config.workers,
        max_pending=config.max_pending,
        retry_budget=config.retry_budget,
        retry_backoff=config.retry_backoff,
        retry_jitter_seed=config.retry_jitter_seed,
        checkpoint_dir=config.checkpoint_dir,
        backend=resolve_backend(config.backend),
        device=DEVICES[config.device],
        amortize=config.amortize,
    )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
    async with service:
        server = await serve_tcp(
            service, config.host, 0, max_line_bytes=config.max_line_bytes
        )
        try:
            port = server.sockets[0].getsockname()[1]
            import os

            conn.send({"shard": shard_id, "port": int(port), "pid": os.getpid()})
            conn.close()
            await stop.wait()
        finally:
            server.close()
            await server.wait_closed()
    # __aexit__ drained the service: every accepted request has streamed
    # its result over the trunk before the process exits.


def worker_main(shard_id: int, config: ShardConfig, conn) -> None:
    """``multiprocessing.Process`` target: run one worker shard to drain."""
    # lint: worker-thread
    asyncio.run(_worker_amain(shard_id, config, conn))
