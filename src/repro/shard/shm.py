"""Shared-memory instance cache keyed by canonical instance digests.

A burst of requests over the same coordinate instance would otherwise
re-serialize its coords once per request *and* per shard.  The router
instead publishes each distinct instance into one
:class:`multiprocessing.shared_memory.SharedMemory` block — keyed by the
same :func:`~repro.core.checkpoint.instance_digest` the checkpoint layer
uses, so "equal instance" means exactly one thing across both systems —
and forwards requests carrying a tiny ``{"shm": ..., "digest": ...}``
stub.  Each worker attaches a given block at most once, copies the
coords out, verifies the digest, and caches the rebuilt
:class:`~repro.tsp.instance.TSPInstance` by digest for every later
request (from any shard's traffic mix) that names it.

Block layout: the raw little-endian float64 bytes of the ``(n, 2)``
coordinate array, nothing else — name/digest/edge-weight-type travel in
the wire stub.  Workers copy out and close immediately; only the router
holds blocks open (and unlinks them at :meth:`InstanceShmCache.close`).

CPython 3.11 subtlety: *attaching* a block calls
``resource_tracker.register`` again — infamous for spurious exit-time
unlinks between unrelated processes (3.13 grew ``track=False`` for
that).  Here it is benign and must be left alone: ``multiprocessing``
children share their parent's tracker process (the fd rides the spawn
preparation data), whose cache is a per-name set — the worker's attach
register is a no-op duplicate of the router's create register, and the
one entry is removed exactly once by the router's ``unlink``.
Explicitly unregistering from a worker would *steal* the router's
registration (and crash-cleanup coverage) out of that shared set.
"""

from __future__ import annotations

import numpy as np

from repro.core.checkpoint import instance_digest
from repro.errors import ServeError
from repro.tsp.instance import TSPInstance

__all__ = ["InstanceShmCache", "resolve_shared_instance", "shared_instance_stub"]


class InstanceShmCache:
    """Router-side owner of one shared-memory block per instance digest.

    Single-threaded (asyncio loop) use; blocks live until :meth:`close`.
    """

    def __init__(self) -> None:
        # digest -> (SharedMemory, wire stub); loop-confined.
        self._blocks: dict[str, tuple] = {}

    def __len__(self) -> int:
        return len(self._blocks)

    def wire_form(self, instance: TSPInstance) -> dict | None:
        """The ``{"shm": ...}`` stub for ``instance``, publishing its
        coords on first sight.  ``None`` when the instance has no coords
        (explicit-matrix instances can't ride shared memory — the caller
        falls back to the inline wire form)."""
        if instance.coords is None:
            return None
        digest = instance_digest(instance)
        entry = self._blocks.get(digest)
        if entry is None:
            from multiprocessing import shared_memory

            coords = np.ascontiguousarray(instance.coords, dtype=np.float64)
            shm = shared_memory.SharedMemory(create=True, size=coords.nbytes)
            shm.buf[: coords.nbytes] = coords.tobytes()
            stub = {
                "shm": shm.name,
                "digest": digest,
                "rows": int(coords.shape[0]),
                "name": instance.name,
                "edge_weight_type": instance.edge_weight_type,
            }
            entry = self._blocks[digest] = (shm, stub)
        return dict(entry[1])

    def close(self) -> None:
        """Release and unlink every published block (router shutdown)."""
        blocks, self._blocks = self._blocks, {}
        for shm, _stub in blocks.values():
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


#: Worker-side digest -> TSPInstance cache (per process): each distinct
#: instance is attached, verified and rebuilt exactly once per worker.
_LOCAL_INSTANCES: dict[str, TSPInstance] = {}


def shared_instance_stub(obj: dict) -> bool:
    """True when a wire instance object is a shared-memory stub."""
    return isinstance(obj, dict) and "shm" in obj


def resolve_shared_instance(obj: dict) -> TSPInstance:
    """Worker-side resolution of a shared-memory instance stub.

    Attach → copy coords out → close → verify the content digest →
    cache.  Raises :class:`~repro.errors.ServeError` on a missing block,
    a malformed stub, or a digest mismatch (all client-addressable error
    lines, never dropped connections).
    """
    try:
        name = str(obj["shm"])
        digest = str(obj["digest"])
        rows = int(obj["rows"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ServeError(f"malformed shared-memory instance stub: {exc}") from None
    cached = _LOCAL_INSTANCES.get(digest)
    if cached is not None:
        return cached
    from multiprocessing import shared_memory

    try:
        shm = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        raise ServeError(
            f"shared-memory instance block {name!r} does not exist "
            "(router gone or stub stale)"
        ) from None
    # No resource_tracker unregister here — see the module docstring: the
    # worker shares the router's tracker, and the attach-time register is
    # a set no-op the router's unlink pairs with.
    try:
        nbytes = rows * 2 * 8
        if shm.size < nbytes:
            raise ServeError(
                f"shared-memory block {name!r} holds {shm.size} bytes, "
                f"need {nbytes} for {rows} coordinate rows"
            )
        coords = (
            np.frombuffer(shm.buf, dtype=np.float64, count=rows * 2)
            .reshape(rows, 2)
            .copy()
        )
    finally:
        shm.close()
    instance = TSPInstance(
        name=str(obj.get("name", "inline")),
        coords=coords,
        edge_weight_type=str(obj.get("edge_weight_type", "EUC_2D")),
    )
    if instance_digest(instance) != digest:
        raise ServeError(
            f"shared-memory instance {name!r} failed its digest check "
            "(router/worker content mismatch)"
        )
    _LOCAL_INSTANCES[digest] = instance
    return instance
