"""The :class:`ArrayBackend` protocol: where the colony's arrays live.

The source paper is entirely about *where* ACO kernels execute; this module
is the seam that lets the same engine code run its arrays on different
substrates.  A backend bundles

* an **array module** (:attr:`ArrayBackend.xp`) exposing the numpy API the
  vectorised kernels are written against (numpy itself, or a drop-in such as
  CuPy),
* **host transfer** (:meth:`ArrayBackend.from_host` /
  :meth:`ArrayBackend.to_host`) — the engine uploads instance data once at
  construction and downloads tours/lengths once per iteration boundary for
  reporting,
* the handful of **named operations whose spelling differs between array
  libraries** (:meth:`ArrayBackend.scatter_add` is ``np.add.at`` on numpy
  but ``cupyx.scatter_add`` on CuPy), and
* a **capability probe** (:meth:`ArrayBackend.probe`) so the registry can
  report *why* a backend is unavailable instead of failing at first use.

Engine code obtains ``xp = state.backend.xp`` and writes ordinary
``xp.take`` / ``xp.cumsum`` / ``xp.argmax`` expressions; with the default
:class:`~repro.backend.numpy_backend.NumpyBackend`, ``xp`` *is* numpy and
every operation is bit-identical to the pre-backend code path.
"""

from __future__ import annotations

import abc
from types import ModuleType

import numpy as np

__all__ = ["ArrayBackend"]


class ArrayBackend(abc.ABC):
    """Abstract array backend: array module + transfers + divergent ops.

    Class attributes identify the backend: ``name`` is the registry key
    (also what ``--backend`` and ``ACO_BACKEND`` select), ``is_accelerated``
    tells tests and benchmarks whether results live off-host.
    """

    name: str = ""
    is_accelerated: bool = False

    # ------------------------------------------------------------- identity

    @property
    @abc.abstractmethod
    def xp(self) -> ModuleType:
        """The array module (numpy-compatible namespace) of this backend."""

    @classmethod
    @abc.abstractmethod
    def probe(cls) -> tuple[bool, str | None]:
        """``(available, reason)``: can this backend run here?

        ``reason`` is ``None`` when available, otherwise a short string
        (import error, missing device) surfaced by ``gpu-aco backends``.
        """

    # ------------------------------------------------------------ transfers

    def from_host(self, array: np.ndarray):
        """Upload a host array (no copy when the backend *is* the host)."""
        return self.xp.asarray(array)

    def to_host(self, array) -> np.ndarray:
        """Download to a host numpy array (no copy when already on host)."""
        return np.asarray(array)

    def synchronize(self) -> None:
        """Block until queued device work is complete (no-op on host)."""

    # ------------------------------------------- protocol ops (xp-delegating)
    #
    # The engines mostly use ``backend.xp`` directly; these named methods
    # pin the minimum operation set every backend must support (the registry
    # smoke-tests them) and give subclasses a hook where an array library
    # spells an operation differently.

    def empty(self, shape, dtype=np.float64):
        return self.xp.empty(shape, dtype=dtype)

    def zeros(self, shape, dtype=np.float64):
        return self.xp.zeros(shape, dtype=dtype)

    def full(self, shape, fill_value, dtype=np.float64):
        return self.xp.full(shape, fill_value, dtype=dtype)

    def arange(self, *args, dtype=None):
        return self.xp.arange(*args, dtype=dtype)

    def asarray(self, array, dtype=None):
        return self.xp.asarray(array, dtype=dtype)

    def power(self, base, exponent, out=None):
        return self.xp.power(base, exponent, out=out)

    def cumsum(self, array, axis=None):
        return self.xp.cumsum(array, axis=axis)

    def argmax(self, array, axis=None):
        return self.xp.argmax(array, axis=axis)

    def argmin(self, array, axis=None):
        return self.xp.argmin(array, axis=axis)

    def take(self, array, indices, axis=None, out=None):
        return self.xp.take(array, indices, axis=axis, out=out)

    def take_along_axis(self, array, indices, axis):
        return self.xp.take_along_axis(array, indices, axis)

    def bincount(self, array, weights=None, minlength=0):
        return self.xp.bincount(array, weights=weights, minlength=minlength)

    @abc.abstractmethod
    def scatter_add(self, target, indices, values) -> None:
        """In-place ``target[indices] += values`` with duplicate indices
        accumulating (the atomic-add semantics every deposit kernel needs);
        ``np.add.at`` on numpy, ``cupyx.scatter_add`` on CuPy."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r}>"
