"""Backend registry: name -> class, with probing and graceful fallback.

Resolution order for the engines (``resolve_backend``):

1. an explicit :class:`~repro.backend.base.ArrayBackend` instance or name
   (``backend="cupy"`` — unavailable names raise, the caller asked for
   exactly that substrate);
2. the ``ACO_BACKEND`` environment variable — a *soft* preference: a
   registered-but-unavailable backend falls back to numpy with a warning
   (an unknown name is still an error — typos should be loud);
3. the default :class:`~repro.backend.numpy_backend.NumpyBackend`.

Instances are cached per name: backends are stateless façades over an array
module, so every caller sharing one instance is both safe and what makes
``engine_a.backend is engine_b.backend`` comparisons cheap.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass

from repro.backend.base import ArrayBackend
from repro.backend.cupy_backend import CupyBackend
from repro.backend.numpy_backend import NumpyBackend
from repro.errors import BackendError, BackendUnavailableError

__all__ = [
    "BACKENDS",
    "BackendInfo",
    "DEFAULT_BACKEND_NAME",
    "ENV_VAR",
    "available_backends",
    "get_backend",
    "register_backend",
    "resolve_backend",
]

#: environment variable consulted when no backend is passed explicitly
ENV_VAR = "ACO_BACKEND"

DEFAULT_BACKEND_NAME = "numpy"

#: registry key -> backend class
BACKENDS: dict[str, type[ArrayBackend]] = {}

_INSTANCES: dict[str, ArrayBackend] = {}


def register_backend(cls: type[ArrayBackend]) -> type[ArrayBackend]:
    """Register a backend class under ``cls.name`` (usable as a decorator)."""
    if not cls.name:
        raise BackendError(f"{cls.__name__} has no registry name")
    existing = BACKENDS.get(cls.name)
    if existing is not None and existing is not cls:
        raise BackendError(
            f"backend name {cls.name!r} already registered by {existing.__name__}"
        )
    BACKENDS[cls.name] = cls
    return cls


register_backend(NumpyBackend)
register_backend(CupyBackend)


@dataclass(frozen=True)
class BackendInfo:
    """Availability record for one registered backend."""

    name: str
    available: bool
    accelerated: bool
    reason: str | None  # why unavailable; None when available


def available_backends() -> list[BackendInfo]:
    """Probe every registered backend, never raising."""
    infos = []
    for name in sorted(BACKENDS):
        cls = BACKENDS[name]
        try:
            available, reason = cls.probe()
        except Exception as exc:  # defensive: a probe must not kill listing
            available, reason = False, f"probe failed: {type(exc).__name__}: {exc}"
        infos.append(
            BackendInfo(
                name=name,
                available=available,
                accelerated=cls.is_accelerated,
                reason=None if available else (reason or "unavailable"),
            )
        )
    return infos


def get_backend(name: str) -> ArrayBackend:
    """Instantiate (or fetch the cached) backend registered under ``name``.

    Raises
    ------
    BackendError
        Unknown name.
    BackendUnavailableError
        Known backend whose probe fails here (reason attached).
    """
    cached = _INSTANCES.get(name)
    if cached is not None:
        return cached
    try:
        cls = BACKENDS[name]
    except KeyError:
        raise BackendError(
            f"unknown backend {name!r}; registered: {sorted(BACKENDS)}"
        ) from None
    available, reason = cls.probe()
    if not available:
        raise BackendUnavailableError(
            f"backend {name!r} is unavailable: {reason}", reason=reason
        )
    backend = _INSTANCES[name] = cls()
    return backend


def resolve_backend(spec: str | ArrayBackend | None = None) -> ArrayBackend:
    """The engines' resolution entry point (see module docstring).

    ``spec=None`` consults ``ACO_BACKEND`` and degrades gracefully when the
    requested backend is registered but cannot run here; explicit specs are
    strict.
    """
    if isinstance(spec, ArrayBackend):
        return spec
    if spec is not None:
        return get_backend(spec)
    env = os.environ.get(ENV_VAR, "").strip()
    if env and env != DEFAULT_BACKEND_NAME:
        try:
            return get_backend(env)
        except BackendUnavailableError as exc:
            warnings.warn(
                f"{ENV_VAR}={env!r} requested but {exc}; falling back to "
                f"{DEFAULT_BACKEND_NAME!r}",
                RuntimeWarning,
                stacklevel=2,
            )
    return get_backend(DEFAULT_BACKEND_NAME)
