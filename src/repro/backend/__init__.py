"""Pluggable array backends: run the same engines on different substrates.

The paper's contribution is mapping ACO kernels onto GPU hardware; this
package is the reproduction's seam for doing the same.  Every per-colony
array the engines allocate goes through an
:class:`~repro.backend.base.ArrayBackend` — numpy on the host by default,
CuPy on a CUDA device when available — selected per engine
(``AntSystem(..., backend="cupy")``), per process (``ACO_BACKEND=cupy``),
or per invocation (``gpu-aco solve att48 --backend cupy``).

See ``README.md`` ("Backends") for how to select one and how to add one.
"""

from __future__ import annotations

from repro.backend.base import ArrayBackend
from repro.backend.cupy_backend import CupyBackend
from repro.backend.numpy_backend import NumpyBackend
from repro.backend.registry import (
    BACKENDS,
    DEFAULT_BACKEND_NAME,
    ENV_VAR,
    BackendInfo,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
)
from repro.backend.workbuf import WorkBuffers

__all__ = [
    "ArrayBackend",
    "NumpyBackend",
    "CupyBackend",
    "BackendInfo",
    "BACKENDS",
    "DEFAULT_BACKEND_NAME",
    "ENV_VAR",
    "WorkBuffers",
    "available_backends",
    "get_backend",
    "register_backend",
    "resolve_backend",
]
