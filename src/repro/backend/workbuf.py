"""Per-engine scratch arena: allocate iteration buffers once, reuse forever.

The paper's kernels never allocate inside the hot loop — every scratch
region (tabu lists, product buffers, reduction scratch) is carved out once
at launch and reused by every construction step of every iteration.  The
vectorised simulation historically re-allocated its scratch per build call,
which puts the Python allocator (and, on an accelerated backend, the device
allocator) on the per-iteration critical path.

:class:`WorkBuffers` is the amortisation seam: one arena per engine, living
on the engine's :class:`~repro.backend.ArrayBackend`.  Kernels request named
buffers with :meth:`WorkBuffers.get`; the first request allocates, every
later request with the same key/shape/dtype returns the *same* array, so a
steady-state iteration performs no scratch allocation at all.  Shapes are
engine-stable (fixed ``B``, ``n``, ``m``), so reallocation only happens if a
caller legitimately changes geometry.

Two rules keep reuse safe:

* only true *scratch* goes through the arena — anything that escapes an
  iteration (tours handed to reports, recorded lengths) must stay freshly
  allocated, otherwise later iterations would mutate recorded history;
* keys are namespaced per call-site (``"taskexact.w"``, ``"dep.vals"``), so
  two kernels can never alias each other's scratch within an engine.

:meth:`WorkBuffers.cached` complements :meth:`get` for *derived constants*
(flattened index bases, broadcast offset columns): values computed once from
engine-constant inputs and reused verbatim every iteration.
"""

from __future__ import annotations

import numpy as np

__all__ = ["WorkBuffers"]


class WorkBuffers:
    """Keyed scratch-buffer arena on one array backend.

    Parameters
    ----------
    backend:
        The :class:`~repro.backend.ArrayBackend` (or name, or ``None`` for
        the resolved default) whose array module owns the buffers.
    """

    def __init__(self, backend=None) -> None:
        from repro.backend import resolve_backend

        self.backend = resolve_backend(backend)
        self._buffers: dict[str, np.ndarray] = {}
        self._derived: dict[str, object] = {}

    # ------------------------------------------------------------- buffers

    def get(self, key: str, shape, dtype) -> np.ndarray:
        """The arena buffer for ``key``, allocated on first use.

        Returns the same array on every call with matching shape/dtype;
        contents are whatever the previous user left (callers must reset
        any buffer whose starting value matters, e.g. visited masks).
        """
        shape = tuple(int(s) for s in shape)
        dtype = np.dtype(dtype)
        buf = self._buffers.get(key)
        if buf is None or buf.shape != shape or buf.dtype != dtype:
            buf = self.backend.xp.empty(shape, dtype=dtype)
            self._buffers[key] = buf
        return buf

    def cached(self, key: str, builder):
        """A derived constant, computed by ``builder()`` once per key.

        For values that depend only on engine-constant inputs (index bases,
        offset columns, transposed candidate tables of *static* data); the
        arena never invalidates them, so anything iteration-dependent must
        go through :meth:`get` instead.
        """
        try:
            return self._derived[key]
        except KeyError:
            value = self._derived[key] = builder()
            return value

    def reset_derived(self) -> None:
        """Drop every :meth:`cached` derived constant (scratch buffers stay).

        Required when an arena is handed from one engine to another (the
        solve-service worker pattern): most derived constants are pure
        index tables stamped by geometry, but some — the Choice kernel's
        hoisted ``eta^beta`` — bake in *engine data* and would be silently
        wrong under a new engine of the same geometry.  The reusable
        ``get()`` buffers carry no such hazard (their contents are reset by
        each user), so the allocation win survives the reset.
        """
        self._derived.clear()

    # -------------------------------------------------------- introspection

    @property
    def nbytes(self) -> int:
        """Total bytes currently held by the arena's reusable buffers."""
        total = sum(int(b.nbytes) for b in self._buffers.values())
        for v in self._derived.values():
            total += int(getattr(v, "nbytes", 0))
        return total

    def __len__(self) -> int:
        return len(self._buffers) + len(self._derived)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<WorkBuffers {len(self._buffers)} buffers + "
            f"{len(self._derived)} derived, {self.nbytes} B on "
            f"{self.backend.name!r}>"
        )
