"""The default host backend: arrays are plain numpy arrays.

Everything the pre-backend engine did, it did through numpy; this backend
simply *names* that substrate so it can be swapped.  ``from_host`` /
``to_host`` are no-copy pass-throughs, which is what keeps the backend seam
free on the host path: the whole engine runs bit-identically to the code
before the seam existed.
"""

from __future__ import annotations

from types import ModuleType

import numpy as np

from repro.backend.base import ArrayBackend

__all__ = ["NumpyBackend"]


class NumpyBackend(ArrayBackend):
    """Host execution on numpy — always available, the reference substrate."""

    name = "numpy"
    is_accelerated = False

    @property
    def xp(self) -> ModuleType:
        return np

    @classmethod
    def probe(cls) -> tuple[bool, str | None]:
        return True, None

    def scatter_add(self, target, indices, values) -> None:
        np.add.at(target, indices, values)
