"""CuPy backend: the engine's arrays live in GPU global memory.

This is the real-hardware counterpart of the simulated device: the same
batched kernels the numpy path runs (choice, construction, tour evaluation,
pheromone update) execute as CuPy element-wise/reduction kernels on an
actual GPU, the way Skinderowicz's GPU ACS/MMAS codes run the same kernel
set on device arrays.  The import is guarded — environments without CuPy
(or without a CUDA device) keep the module importable and the registry
reports the probe failure instead of crashing.

Numerical caveat: CuPy reductions (``cumsum``, ``sum``) may use different
accumulation orders than numpy's sequential semantics, so cross-backend
results are *statistically* equivalent rather than guaranteed bit-identical;
the parity property test (skip-marked without a device) pins tour-level
agreement for fixed seeds.
"""

from __future__ import annotations

from types import ModuleType

from repro.backend.base import ArrayBackend
from repro.errors import BackendUnavailableError

__all__ = ["CupyBackend"]

try:  # pragma: no cover - exercised only where cupy is installed
    import cupy as _cupy
    import cupyx as _cupyx

    _IMPORT_ERROR: str | None = None
except Exception as exc:  # pragma: no cover - the common path in CI
    _cupy = None
    _cupyx = None
    _IMPORT_ERROR = f"{type(exc).__name__}: {exc}"


class CupyBackend(ArrayBackend):
    """GPU execution through CuPy (requires a CUDA device)."""

    name = "cupy"
    is_accelerated = True

    def __init__(self) -> None:
        available, reason = self.probe()
        if not available:
            raise BackendUnavailableError(
                f"backend 'cupy' is unavailable: {reason}", reason=reason
            )

    @property
    def xp(self) -> ModuleType:
        return _cupy

    @classmethod
    def probe(cls) -> tuple[bool, str | None]:
        if _cupy is None:
            return False, _IMPORT_ERROR
        try:  # pragma: no cover - needs real hardware
            count = _cupy.cuda.runtime.getDeviceCount()
        except Exception as exc:  # pragma: no cover
            return False, f"{type(exc).__name__}: {exc}"
        if count < 1:  # pragma: no cover
            return False, "no CUDA device visible"
        return True, None  # pragma: no cover

    # ------------------------------------------------------------ transfers

    def to_host(self, array):  # pragma: no cover - needs real hardware
        return _cupy.asnumpy(array)

    def synchronize(self) -> None:  # pragma: no cover - needs real hardware
        _cupy.cuda.get_current_stream().synchronize()

    def scatter_add(self, target, indices, values) -> None:  # pragma: no cover
        _cupyx.scatter_add(target, indices, values)
