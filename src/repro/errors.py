"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to discriminate the subsystem that failed.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "TSPError",
    "TSPLIBFormatError",
    "UnsupportedEdgeWeightError",
    "InvalidTourError",
    "SimtError",
    "LaunchConfigError",
    "OccupancyError",
    "MemoryModelError",
    "DeviceFeatureError",
    "ACOConfigError",
    "BackendError",
    "BackendUnavailableError",
    "ExperimentError",
    "CalibrationError",
    "RunInterrupted",
    "ServeError",
    "ServiceClosedError",
    "ServiceOverloadedError",
    "ServeTimeoutError",
    "InjectedFaultError",
    "WorkerKilledError",
    "CheckpointError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


# --------------------------------------------------------------------------- TSP


class TSPError(ReproError):
    """Base class for TSP-substrate errors."""


class TSPLIBFormatError(TSPError):
    """A TSPLIB file could not be parsed.

    Parameters
    ----------
    message:
        Human-readable description of the problem.
    line_no:
        1-based line number in the source file, when known.
    """

    def __init__(self, message: str, line_no: int | None = None) -> None:
        self.line_no = line_no
        if line_no is not None:
            message = f"line {line_no}: {message}"
        super().__init__(message)


class UnsupportedEdgeWeightError(TSPLIBFormatError):
    """The instance uses an ``EDGE_WEIGHT_TYPE`` this library does not implement."""


class InvalidTourError(TSPError):
    """A tour fails validation (wrong length, repeated city, out-of-range index)."""


# -------------------------------------------------------------------------- SIMT


class SimtError(ReproError):
    """Base class for GPU-simulator errors."""


class LaunchConfigError(SimtError):
    """A kernel launch configuration violates device limits."""


class OccupancyError(SimtError):
    """A block cannot be scheduled at all on the device (0 blocks/SM)."""


class MemoryModelError(SimtError):
    """Illegal interaction with a simulated memory space."""


class DeviceFeatureError(SimtError):
    """A kernel requires a device capability the target device lacks.

    The C1060 (CC 1.3) famously lacks hardware float atomics; kernels that
    require them either raise this error or fall back to software emulation,
    depending on their ``strict`` setting.
    """


# --------------------------------------------------------------------------- ACO


class ACOConfigError(ReproError):
    """Invalid Ant System parameterisation."""


# ----------------------------------------------------------------------- backend


class BackendError(ReproError):
    """Array-backend failure (unknown name, broken registration)."""


class BackendUnavailableError(BackendError):
    """A registered backend cannot run here (import failure, no device).

    Parameters
    ----------
    message:
        Human-readable description.
    reason:
        The underlying probe failure (e.g. the import error string), kept
        separately so the ``gpu-aco backends`` listing can surface it.
    """

    def __init__(self, message: str, reason: str | None = None) -> None:
        self.reason = reason
        super().__init__(message)


# -------------------------------------------------------------------- experiments


class ExperimentError(ReproError):
    """An experiment harness failure (unknown id, bad mode, missing data)."""


class CalibrationError(ExperimentError):
    """Cost-model calibration failed to converge or was given unusable data."""


# ------------------------------------------------------------------- interrupts


class RunInterrupted(KeyboardInterrupt):
    """Ctrl-C landed inside a run loop; best-so-far results were salvaged.

    Deliberately **not** a :class:`ReproError`: it subclasses
    :class:`KeyboardInterrupt` so that code which does not know about it
    keeps the standard Ctrl-C semantics (the interrupt still propagates,
    ``except Exception`` does not swallow it), while the CLI — and any
    caller that opts in — can catch it specifically and report the partial
    result instead of dumping a traceback.

    Parameters
    ----------
    partial:
        The salvaged best-so-far result — a
        :class:`~repro.core.batch.BatchRunResult`,
        :class:`~repro.core.acs.ACSRunResult`,
        :class:`~repro.core.mmas.MMASRunResult` or
        :class:`~repro.experiments.harness.SweepResult`, depending on which
        loop was interrupted.  ``None`` only when nothing completed (loops
        re-raise the bare ``KeyboardInterrupt`` in that case instead).
    """

    def __init__(self, partial=None, message: str = "run interrupted") -> None:
        self.partial = partial
        super().__init__(message)


# ----------------------------------------------------------------------- serving


class ServeError(ReproError):
    """Base class for async solve-service failures."""


class ServiceClosedError(ServeError):
    """A request was submitted to a service that is draining or stopped."""


class ServiceOverloadedError(ServeError):
    """The service's pending-request capacity is exhausted (backpressure)."""


class ServeTimeoutError(ServeError):
    """A request exceeded its wall-clock timeout before completing.

    Enforced lazily at flush/retry boundaries: the service does not run a
    per-request timer, it checks deadlines whenever the request would next
    be (re)scheduled onto a worker.
    """


class InjectedFaultError(ServeError):
    """A deterministic fault-injection plan fired (chaos testing only).

    Raised by :class:`repro.serve.faults.FaultInjector` inside worker
    batches; in production code paths this error never occurs.
    """


class WorkerKilledError(BaseException):
    """A fault plan simulated the death of a worker mid-batch.

    Deliberately **not** an :class:`Exception`: real worker death (OOM
    killer, segfault in a native extension) does not flow through normal
    ``except Exception`` recovery, so the chaos seam models it as a
    ``BaseException`` that only the service's outermost BaseException
    barrier may catch.  ``concurrent.futures`` captures BaseExceptions
    raised on worker threads, so the futures plumbing survives.
    """


# -------------------------------------------------------------------- checkpoint


class CheckpointError(ReproError):
    """An engine checkpoint could not be written, read, or restored.

    Covers unreadable files, magic/version mismatches, and fingerprint
    mismatches (restoring a checkpoint into an engine whose configuration
    differs from the one that wrote it).
    """
