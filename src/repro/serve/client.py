"""In-process async client for :class:`~repro.serve.service.SolveService`.

The thinnest useful wrapper: callers hold plain instances/params and get
back :class:`~repro.serve.service.SolveHandle` streams without building
:class:`~repro.serve.service.SolveRequest` records by hand.  The TCP
front-end (:mod:`repro.serve.protocol`) speaks to the same service object;
this client is the zero-serialization path for embedding the service in an
existing asyncio application.
"""

from __future__ import annotations

from repro.core.colony import RunResult
from repro.core.params import ACOParams
from repro.serve.service import SolveHandle, SolveRequest, SolveService
from repro.tsp.instance import TSPInstance

__all__ = ["AsyncSolveClient"]


class AsyncSolveClient:
    """Submit solve jobs to an in-process :class:`SolveService`.

    Examples
    --------
    ::

        async with SolveService(max_batch=8) as service:
            client = AsyncSolveClient(service)
            handle = await client.solve(instance, iterations=50, report_every=10)
            async for update in handle:          # one per K-boundary
                print(update.iteration, update.best_length)
            result = await handle.result()        # bit-identical to solo
    """

    def __init__(self, service: SolveService) -> None:
        self.service = service

    async def solve(
        self,
        instance: TSPInstance,
        params: ACOParams | None = None,
        *,
        iterations: int = 20,
        report_every: int = 1,
        deadline: float | None = None,
        timeout: float | None = None,
        priority: int = 0,
        target_length: int | None = None,
        construction: int = 8,
        pheromone: int = 1,
        variant: str = "as",
        local_search: str = "none",
        ls_passes: int | None = None,
        ls_target: str = "iteration-best",
    ) -> SolveHandle:
        """Queue one solve; returns once the request is accepted (which may
        suspend under backpressure).  Stream/await the returned handle."""
        request = SolveRequest(
            instance=instance,
            params=params or ACOParams(),
            iterations=iterations,
            report_every=report_every,
            deadline=deadline,
            timeout=timeout,
            priority=priority,
            target_length=target_length,
            construction=construction,
            pheromone=pheromone,
            variant=variant,
            local_search=local_search,
            ls_passes=ls_passes,
            ls_target=ls_target,
        )
        return await self.service.submit(request)

    async def solve_and_wait(self, instance: TSPInstance, **kwargs) -> RunResult:
        """Submit and block until the final result (ignores the stream)."""
        handle = await self.solve(instance, **kwargs)
        return await handle.result()

    def stats(self) -> dict:
        """Live :meth:`~repro.serve.service.ServiceStats.snapshot` of the
        wrapped service (same payload the TCP ``{"op": "stats"}`` line
        returns)."""
        return self.service.stats.snapshot()

    def health(self) -> dict:
        """Live :meth:`~repro.serve.service.SolveService.health` probe
        (same payload the TCP ``{"op": "health"}`` line returns)."""
        return self.service.health()
