"""JSON-lines wire protocol and TCP front-end for the solve service.

One request or response per ``\\n``-terminated JSON object — trivially
scriptable (``nc`` + a JSON library is a full client) and streaming-friendly
(boundary updates are lines interleaved ahead of the final result line).

Request (client -> server)::

    {"id": "r1", "instance": {"suite": "att48"}, "iterations": 50,
     "report_every": 10, "params": {"seed": 7}, "deadline": 2.0,
     "target_length": 11200, "construction": 8, "pheromone": 1,
     "variant": "mmas", "local_search": "2opt", "ls_passes": 2,
     "ls_target": "iteration-best"}

``instance`` is either ``{"suite": NAME}`` (a paper-suite instance) or an
inline coordinate instance ``{"name": ..., "coords": [[x, y], ...],
"edge_weight_type": "EUC_2D"}``.  Every field except ``instance`` is
optional; ``id`` defaults to a server-assigned ordinal; ``variant``
defaults to ``"as"`` (``"acs"`` and ``"mmas"`` run on the same batched
engine; unknown values are answered with an ``error`` line).
``local_search`` defaults to ``"none"``; unknown values — and ls knobs
without an algorithm — are likewise answered with an ``error`` line.

Responses (server -> client), all tagged with the request ``id``::

    {"type": "accepted", "id": "r1"}
    {"type": "update", "id": "r1", "iteration": 10, "best_length": 11812}
    {"type": "result", "id": "r1", "best_length": 11423, "best_tour": [...],
     "iteration_best_lengths": [...], "iterations_run": 50,
     "wall_seconds": 0.41, "early": null}
    {"type": "error", "id": "r1", "error": "ACOConfigError", "message": "..."}

A connection may pipeline any number of requests; responses for different
requests interleave (match on ``id``).  Closing the connection does not
cancel accepted work.

Admin lines carry an ``op`` instead of an ``instance`` — the live stats
and health planes::

    {"op": "stats", "id": "s1"}
    {"type": "stats", "id": "s1", "stats": {"submitted": 12, ...,
     "request_latency_seconds": {"count": 12, "p50": ..., "p95": ...}}}
    {"op": "health", "id": "h1"}
    {"type": "health", "id": "h1", "health": {"accepting": true,
     "queued": 0, "inflight_batches": 1, "workers_alive": 2,
     "last_batch_age_seconds": 0.8, ...}}

``stats`` answers with the service's
:meth:`~repro.serve.service.ServiceStats.snapshot` (batch counters,
flush-cause counts, queue-wait / batch-wall / request-latency
distributions); ``health`` with
:meth:`~repro.serve.service.SolveService.health` (queue depths, worker
liveness, last-batch age); unknown ops get an ``error`` line.  ``gpu-aco
stats`` is the CLI client for both.

Wire hardening: a line longer than ``max_line_bytes`` (default 1 MiB) or
one that is not valid UTF-8 JSON is answered with a structured ``error``
line and the connection **survives** — oversized input is discarded in
bounded chunks, never buffered whole.  The client helpers take connect /
read timeouts and bounded, jittered reconnect-retries for transient
connection errors.
"""

from __future__ import annotations

import asyncio
import json
import random

import numpy as np

from repro.core.colony import RunResult
from repro.core.params import ACOParams
from repro.errors import ReproError, ServeError
from repro.serve.service import SolveHandle, SolveRequest, SolveService, SolveUpdate
from repro.tsp.instance import TSPInstance

__all__ = [
    "DEFAULT_MAX_LINE_BYTES",
    "decode_request",
    "encode_request",
    "health_over_tcp",
    "instance_from_json",
    "instance_to_json",
    "request_over_tcp",
    "serve_tcp",
    "stats_over_tcp",
]

_PARAM_FIELDS = ("alpha", "beta", "rho", "n_ants", "nn", "seed", "eta_shift")

#: default cap on one wire line; oversized lines are discarded in bounded
#: chunks and answered with an ``error`` line (the connection survives)
DEFAULT_MAX_LINE_BYTES = 1 << 20


# ------------------------------------------------------------- encode / decode


def instance_to_json(instance: TSPInstance) -> dict:
    """Inline-JSON form of a coordinate instance."""
    if instance.coords is None:
        raise ServeError(
            "explicit-matrix instances cannot be inlined; serve them from "
            "the suite by name"
        )
    return {
        "name": instance.name,
        "coords": [[float(x), float(y)] for x, y in instance.coords],
        "edge_weight_type": instance.edge_weight_type,
    }


def instance_from_json(obj: dict) -> TSPInstance:
    if not isinstance(obj, dict):
        raise ServeError(f"instance must be an object, got {type(obj).__name__}")
    if "suite" in obj:
        from repro.tsp.suite import load_instance

        return load_instance(str(obj["suite"]))
    if "shm" in obj:
        # Shard-tier form: the router published the coords into a shared-
        # memory block keyed by content digest; resolve (and cache) it in
        # this worker process.
        from repro.shard.shm import resolve_shared_instance

        return resolve_shared_instance(obj)
    if "coords" not in obj:
        raise ServeError("instance needs 'suite', 'coords' or 'shm'")
    return TSPInstance(
        name=str(obj.get("name", "inline")),
        coords=np.asarray(obj["coords"], dtype=np.float64),
        edge_weight_type=str(obj.get("edge_weight_type", "EUC_2D")),
    )


def encode_request(
    request: SolveRequest, req_id: str, *, instance_obj: dict | None = None
) -> bytes:
    """One request as a JSON line (the in-process -> wire direction).

    ``instance_obj`` overrides the instance's wire form — the shard
    router forwards ``{"suite": ...}`` stubs and shared-memory stubs this
    way instead of re-inlining coords per request.
    """
    payload: dict = {
        "id": req_id,
        "instance": (
            instance_obj
            if instance_obj is not None
            else instance_to_json(request.instance)
        ),
        "iterations": request.iterations,
        "report_every": request.report_every,
        "construction": request.construction,
        "pheromone": request.pheromone,
        "variant": request.variant,
        "params": {f: getattr(request.params, f) for f in _PARAM_FIELDS},
    }
    if request.deadline is not None:
        payload["deadline"] = request.deadline
    if request.timeout is not None:
        payload["timeout"] = request.timeout
    if request.priority:
        payload["priority"] = request.priority
    if request.target_length is not None:
        payload["target_length"] = request.target_length
    if request.local_search != "none":
        payload["local_search"] = request.local_search
        payload["ls_target"] = request.ls_target
        if request.ls_passes is not None:
            payload["ls_passes"] = request.ls_passes
    return (json.dumps(payload) + "\n").encode("utf-8")


def _parse_line(line: bytes | str) -> dict:
    """One wire line as a JSON object; :class:`~repro.errors.ServeError`
    on anything else (broken JSON *and* undecodable bytes — both are
    client errors that must become error responses, not dropped
    connections)."""
    try:
        obj = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ServeError(f"bad JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise ServeError("request must be a JSON object")
    return obj


def decode_request(line: bytes | str, *, default_id: str) -> tuple[str, SolveRequest]:
    """Parse one request line into ``(id, SolveRequest)``.

    Raises :class:`~repro.errors.ServeError` (or another
    :class:`~repro.errors.ReproError` from parameter validation) on any
    malformed input; the connection handler converts that into an
    ``error`` response instead of dropping the connection.
    """
    return decode_request_obj(_parse_line(line), default_id=default_id)


def decode_request_obj(obj: dict, *, default_id: str) -> tuple[str, SolveRequest]:
    """Decode an already-parsed request object (see :func:`decode_request`)."""
    req_id = str(obj.get("id", default_id))
    try:
        if "instance" not in obj:
            raise ServeError("request is missing 'instance'")
        instance = instance_from_json(obj["instance"])
        raw_params = obj.get("params", {})
        if not isinstance(raw_params, dict):
            raise ServeError("'params' must be an object")
        unknown = set(raw_params) - set(_PARAM_FIELDS)
        if unknown:
            raise ServeError(f"unknown params fields: {sorted(unknown)}")
        params = ACOParams(**raw_params)
        request = SolveRequest(
            instance=instance,
            params=params,
            iterations=int(obj.get("iterations", 20)),
            report_every=int(obj.get("report_every", 1)),
            deadline=(
                None if obj.get("deadline") is None else float(obj["deadline"])
            ),
            timeout=(
                None if obj.get("timeout") is None else float(obj["timeout"])
            ),
            priority=int(obj.get("priority", 0)),
            target_length=(
                None
                if obj.get("target_length") is None
                else int(obj["target_length"])
            ),
            construction=int(obj.get("construction", 8)),
            pheromone=int(obj.get("pheromone", 1)),
            variant=str(obj.get("variant", "as")),
            local_search=str(obj.get("local_search", "none")),
            ls_passes=(
                None if obj.get("ls_passes") is None else int(obj["ls_passes"])
            ),
            ls_target=str(obj.get("ls_target", "iteration-best")),
        )
    except (TypeError, ValueError) as exc:
        # Well-formed JSON carrying wrong-typed values (ragged coords, a
        # string alpha, a list for iterations): still a client error, so it
        # must become an error *response*, never a dropped connection.
        wrapped = ServeError(f"bad request field: {exc}")
        wrapped.req_id = req_id  # type: ignore[attr-defined]
        raise wrapped from None
    except ReproError as exc:
        # Stamp the id we did manage to parse, so the connection handler
        # can address its error response.
        exc.req_id = req_id  # type: ignore[attr-defined]
        raise
    return req_id, request


def _encode_update(req_id: str, update: SolveUpdate) -> bytes:
    payload = {
        "type": "update",
        "id": req_id,
        "iteration": update.iteration,
        "best_length": update.best_length,
    }
    return (json.dumps(payload) + "\n").encode("utf-8")


def _encode_result(req_id: str, result: RunResult, early: str | None) -> bytes:
    payload = {
        "type": "result",
        "id": req_id,
        "best_length": int(result.best_length),
        "best_tour": [int(c) for c in result.best_tour],
        "iteration_best_lengths": [int(v) for v in result.iteration_best_lengths],
        "iterations_run": len(result.iteration_best_lengths),
        "wall_seconds": float(result.wall_seconds),
        "early": early,
    }
    return (json.dumps(payload) + "\n").encode("utf-8")


def _encode_error(req_id: str | None, exc: BaseException) -> bytes:
    payload = {
        "type": "error",
        "id": req_id,
        "error": type(exc).__name__,
        "message": str(exc),
    }
    return (json.dumps(payload) + "\n").encode("utf-8")


def _encode_accepted(req_id: str) -> bytes:
    return (json.dumps({"type": "accepted", "id": req_id}) + "\n").encode("utf-8")


def _encode_stats(req_id: str, stats: dict) -> bytes:
    payload = {"type": "stats", "id": req_id, "stats": stats}
    return (json.dumps(payload) + "\n").encode("utf-8")


def _encode_health(req_id: str, health: dict) -> bytes:
    payload = {"type": "health", "id": req_id, "health": health}
    return (json.dumps(payload) + "\n").encode("utf-8")


# --------------------------------------------------------------------- server


async def _read_wire_line(
    reader: asyncio.StreamReader,
) -> tuple[bytes, int]:
    """One line from a limit-bounded reader; ``(line, discarded_bytes)``.

    The reader's ``limit`` (set at ``start_server`` time) bounds how much
    an unterminated line may buffer.  An over-limit line is consumed and
    thrown away in limit-sized chunks up to its terminating newline —
    memory stays bounded no matter how long the line is — and reported as
    ``(b"", discarded)`` with ``discarded > 0`` so the caller can answer
    with a structured error.  EOF returns ``(b"", 0)``; a final
    unterminated line within the limit is returned as-is.
    """
    try:
        return await reader.readuntil(b"\n"), 0
    except asyncio.IncompleteReadError as exc:
        return exc.partial, 0  # EOF (possibly an unterminated final line)
    except asyncio.LimitOverrunError as exc:
        discarded = 0
        consumed = exc.consumed
        while True:
            # Drop the buffered over-limit bytes, then keep scanning for
            # the newline; every pass consumes what the buffer holds.
            chunk = await reader.read(max(consumed, 1))
            discarded += len(chunk)
            if not chunk:  # EOF inside the oversized line
                break
            try:
                tail = await reader.readuntil(b"\n")
                discarded += len(tail)
                break
            except asyncio.IncompleteReadError as eof:
                discarded += len(eof.partial)
                break
            except asyncio.LimitOverrunError as more:
                consumed = more.consumed
        return b"", discarded


async def _stream_response(
    handle: SolveHandle,
    req_id: str,
    writer: asyncio.StreamWriter,
    lock: asyncio.Lock,
) -> None:
    """Relay one handle's updates + final result onto the shared writer."""

    async def _send(data: bytes) -> None:
        async with lock:
            if writer.is_closing():
                return
            writer.write(data)
            await writer.drain()

    try:
        async for update in handle:
            await _send(_encode_update(req_id, update))
        try:
            result = await handle.result()
        except ReproError as exc:
            await _send(_encode_error(req_id, exc))
        else:
            # Early resolution is visible as an empty iteration trace; the
            # wire surfaces it as a tag so clients need no such inference.
            early = None
            if not result.iteration_best_lengths:
                early = "deadline_or_target"
            await _send(_encode_result(req_id, result, early))
    except (ConnectionResetError, BrokenPipeError):  # client went away
        pass


async def _handle_connection(
    service: SolveService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    lock = asyncio.Lock()
    streams: set[asyncio.Task] = set()
    counter = 0
    try:
        while True:
            line, discarded = await _read_wire_line(reader)
            if discarded:
                counter += 1
                async with lock:
                    writer.write(
                        _encode_error(
                            None,
                            ServeError(
                                f"line too long ({discarded} bytes discarded); "
                                "one request per newline-terminated line"
                            ),
                        )
                    )
                    await writer.drain()
                continue
            if not line:  # EOF
                break
            if not line.strip():
                continue
            counter += 1
            req_id: str | None = None
            try:
                obj = _parse_line(line)
                if "op" in obj:
                    # Admin plane: answered inline, never queued behind
                    # solve work (snapshot()/health() are lock-bounded,
                    # not solving).
                    op = str(obj["op"])
                    op_id = str(obj.get("id", f"req-{counter}"))
                    if op == "stats":
                        payload = _encode_stats(
                            op_id, service.stats.snapshot()
                        )
                    elif op == "health":
                        payload = _encode_health(op_id, service.health())
                    else:
                        raise ServeError(
                            f"unknown op {op!r} (supported: 'stats', 'health')"
                        )
                    async with lock:
                        writer.write(payload)
                        await writer.drain()
                    continue
                req_id, request = decode_request_obj(
                    obj, default_id=f"req-{counter}"
                )
                handle = await service.submit(request)
            except ReproError as exc:
                async with lock:
                    writer.write(
                        _encode_error(getattr(exc, "req_id", req_id), exc)
                    )
                    await writer.drain()
                continue
            async with lock:
                writer.write(_encode_accepted(req_id))
                await writer.drain()
            task = asyncio.create_task(
                _stream_response(handle, req_id, writer, lock)
            )
            streams.add(task)
            task.add_done_callback(streams.discard)
    except (ConnectionResetError, BrokenPipeError):
        pass
    finally:
        if streams:
            await asyncio.gather(*list(streams), return_exceptions=True)
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass


async def serve_tcp(
    service: SolveService,
    host: str = "127.0.0.1",
    port: int = 8642,
    *,
    max_line_bytes: int = DEFAULT_MAX_LINE_BYTES,
) -> asyncio.AbstractServer:
    """Start the JSON-lines TCP front-end on an already-started service.

    Returns the :class:`asyncio.AbstractServer`; the caller owns both
    lifetimes (close the server, then drain the service).  ``port=0``
    binds an ephemeral port (see ``server.sockets[0].getsockname()``).
    ``max_line_bytes`` bounds per-connection buffering: longer lines are
    discarded in bounded chunks and answered with an ``error`` line.
    """
    if max_line_bytes < 1:
        raise ServeError(
            f"max_line_bytes must be >= 1, got {max_line_bytes}"
        )

    async def handler(reader, writer):
        try:
            await _handle_connection(service, reader, writer)
        except asyncio.CancelledError:
            # Loop shutdown cancels open connections; end the task quietly —
            # 3.11's stream machinery logs handler tasks that finish
            # cancelled as "Exception in callback" noise.
            writer.close()

    return await asyncio.start_server(
        handler, host, port, limit=max_line_bytes
    )


# --------------------------------------------------------------------- client


async def _connect_with_retries(
    host: str,
    port: int,
    *,
    connect_timeout: float | None,
    connect_retries: int,
    retry_backoff: float,
    jitter_seed: int,
):
    """``open_connection`` with a timeout and bounded jittered retries.

    Transient failures (refused/reset/unreachable, or a connect that
    times out) are retried up to ``connect_retries`` times with seeded
    exponential backoff; the final failure surfaces as
    :class:`~repro.errors.ServeError` carrying the underlying cause.
    """
    rng = random.Random(jitter_seed)
    attempt = 0
    while True:
        try:
            return await asyncio.wait_for(
                asyncio.open_connection(host, port), connect_timeout
            )
        except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
            if attempt >= connect_retries:
                raise ServeError(
                    f"cannot connect to {host}:{port} after "
                    f"{attempt + 1} attempt(s): {exc!r}"
                ) from exc
            delay = retry_backoff * (2**attempt) * (1.0 + rng.random())
            await asyncio.sleep(delay)
            attempt += 1


async def _read_response_line(
    reader: asyncio.StreamReader, read_timeout: float | None
) -> bytes:
    """One response line, bounded by ``read_timeout`` seconds (None = no
    bound); a timeout surfaces as :class:`~repro.errors.ServeError`."""
    try:
        return await asyncio.wait_for(reader.readline(), read_timeout)
    except asyncio.TimeoutError:
        raise ServeError(
            f"no response from server within {read_timeout}s"
        ) from None


async def request_over_tcp(
    host: str,
    port: int,
    request: SolveRequest,
    *,
    req_id: str = "r0",
    connect_timeout: float | None = None,
    read_timeout: float | None = None,
    connect_retries: int = 0,
    retry_backoff: float = 0.05,
    jitter_seed: int = 0,
) -> tuple[list[dict], dict]:
    """Fire one request at a running server; return ``(updates, final)``.

    ``updates`` are the decoded ``update`` payloads in arrival order;
    ``final`` is the ``result`` payload.  Raises
    :class:`~repro.errors.ServeError` when the server answers with an
    ``error`` response, closes early, cannot be reached within
    ``connect_timeout`` (after ``connect_retries`` jittered re-attempts),
    or goes silent past ``read_timeout``.  Mainly a smoke-test/client
    building block — production clients should keep one connection and
    pipeline.
    """
    reader, writer = await _connect_with_retries(
        host,
        port,
        connect_timeout=connect_timeout,
        connect_retries=connect_retries,
        retry_backoff=retry_backoff,
        jitter_seed=jitter_seed,
    )
    updates: list[dict] = []
    try:
        writer.write(encode_request(request, req_id))
        await writer.drain()
        while True:
            line = await _read_response_line(reader, read_timeout)
            if not line:
                raise ServeError("server closed the connection mid-request")
            obj = json.loads(line)
            kind = obj.get("type")
            if kind == "accepted":
                continue
            if kind == "update":
                updates.append(obj)
            elif kind == "result":
                return updates, obj
            elif kind == "error":
                raise ServeError(
                    f"server error {obj.get('error')}: {obj.get('message')}"
                )
            else:
                raise ServeError(f"unknown response type {kind!r}")
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass


async def _admin_over_tcp(
    host: str,
    port: int,
    op: str,
    req_id: str,
    *,
    connect_timeout: float | None = None,
    read_timeout: float | None = None,
    connect_retries: int = 0,
    retry_backoff: float = 0.05,
    jitter_seed: int = 0,
) -> dict:
    """One admin round-trip (``stats`` / ``health``); returns the payload."""
    reader, writer = await _connect_with_retries(
        host,
        port,
        connect_timeout=connect_timeout,
        connect_retries=connect_retries,
        retry_backoff=retry_backoff,
        jitter_seed=jitter_seed,
    )
    try:
        writer.write(
            (json.dumps({"op": op, "id": req_id}) + "\n").encode("utf-8")
        )
        await writer.drain()
        line = await _read_response_line(reader, read_timeout)
        if not line:
            raise ServeError("server closed the connection mid-request")
        obj = json.loads(line)
        kind = obj.get("type")
        if kind == op:
            return obj[op]
        if kind == "error":
            raise ServeError(
                f"server error {obj.get('error')}: {obj.get('message')}"
            )
        raise ServeError(f"unknown response type {kind!r}")
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass


async def stats_over_tcp(
    host: str, port: int, *, req_id: str = "stats-0", **net_kwargs
) -> dict:
    """Scrape a running server's live stats snapshot over one connection.

    Sends ``{"op": "stats"}`` and returns the decoded ``stats`` payload
    (:meth:`~repro.serve.service.ServiceStats.snapshot`).  Raises
    :class:`~repro.errors.ServeError` on an ``error`` response or early
    close; accepts the same ``connect_timeout`` / ``read_timeout`` /
    ``connect_retries`` / ``retry_backoff`` / ``jitter_seed`` knobs as
    :func:`request_over_tcp`.  This is what ``gpu-aco stats`` calls.
    """
    return await _admin_over_tcp(host, port, "stats", req_id, **net_kwargs)


async def health_over_tcp(
    host: str, port: int, *, req_id: str = "health-0", **net_kwargs
) -> dict:
    """Probe a running server's liveness over one connection.

    Sends ``{"op": "health"}`` and returns the decoded ``health`` payload
    (:meth:`~repro.serve.service.SolveService.health`: queue depths,
    worker liveness, last-batch age).  Same network knobs as
    :func:`stats_over_tcp`.
    """
    return await _admin_over_tcp(host, port, "health", req_id, **net_kwargs)
