"""Async micro-batching solve service: request packing over the batch engine.

The paper's throughput comes from keeping many ants and colonies resident
on the device at once; production traffic arrives as *small individual
solve requests*.  This module closes that gap the way GPU ACO serving
systems do (Skinderowicz 2016; the ICACIT 2014 GPGPU-ACO overview): a
queueing front-end **manufactures batches** out of concurrent requests.

Requests are bucketed by everything a :class:`~repro.core.batch.BatchEngine`
requires rows to share — instance size ``n``, colony size ``m``, candidate
width ``nn``, iteration budget, ``report_every`` and the kernel pair — and
packed, up to ``max_batch`` per batch with a ``max_wait`` age bound, into
single vectorized engine runs on worker threads.  Per-row params (seed,
alpha, beta, rho, eta_shift) and per-row *instances* may differ freely: the
engine's solo-equivalence invariant guarantees each packed row is
bit-identical to a solo run of that request, so packing is a pure
throughput transform with no numerical caveat.

Streaming rides the engine's ``on_boundary`` hook: at every ``report_every``
boundary each caller receives a :class:`SolveUpdate` with its row's
best-so-far, and per-request deadlines / target lengths resolve early —
the whole batch stops as soon as every rider is satisfied.

Concurrency model: one asyncio event loop owns all queues, handles and
bookkeeping; engine runs execute in a :class:`~concurrent.futures.
ThreadPoolExecutor` (numpy/CuPy kernels release the GIL), each worker
thread owning a private :class:`~repro.backend.WorkBuffers` arena reused
across batches.  Worker threads talk back only via
``loop.call_soon_threadsafe``.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import NamedTuple

from repro.backend import WorkBuffers, resolve_backend
from repro.core.batch import BatchEngine, BatchRunResult, BoundaryUpdate
from repro.core.colony import RunResult
from repro.core.params import ACOParams
from repro.errors import (
    ACOConfigError,
    ServeError,
    ServiceClosedError,
    ServiceOverloadedError,
)
from repro.obs import MetricsRegistry
from repro.simt.device import TESLA_M2050, DeviceSpec
from repro.tsp.instance import TSPInstance

__all__ = [
    "BatchKey",
    "ServiceStats",
    "SolveHandle",
    "SolveRequest",
    "SolveService",
    "SolveUpdate",
]


class BatchKey(NamedTuple):
    """Everything packed rows must share: the size-bucket queue key.

    Two requests land in the same bucket iff an engine batch can legally
    hold both as rows — equal array geometry (``n``, ``m``, ``nn``), equal
    iteration schedule, one kernel pair and one ACO variant (a batch runs
    a single :class:`~repro.core.variant.VariantStrategy`).  Per-row
    params and instance *data* are free to differ.
    """

    n: int
    m: int
    nn: int
    iterations: int
    report_every: int
    construction: int
    pheromone: int
    variant: str = "as"
    local_search: str = "none"
    ls_passes: int | None = None
    ls_target: str = "iteration-best"


@dataclass(frozen=True)
class SolveRequest:
    """One caller's solve job, as queued by :class:`SolveService`.

    Attributes
    ----------
    instance / params:
        What a solo :class:`~repro.core.AntSystem` would take; results are
        bit-identical to that solo run (unless resolved early).
    iterations:
        Iteration budget.
    report_every:
        Streaming granularity: the caller receives one :class:`SolveUpdate`
        per K-iteration boundary.  Larger K amortises host transfers
        exactly as in :meth:`~repro.core.batch.BatchEngine.run`.
    deadline:
        Optional wall-clock budget in **seconds from submission**.  At the
        first boundary past the deadline the request resolves with its
        best-so-far (the batch keeps running for co-packed riders that
        still have budget).
    target_length:
        Optional solution-quality early-out: resolve at the first boundary
        whose best is at or below this length.
    construction / pheromone:
        Kernel versions (part of the bucket key).
    variant:
        ACO variant the request runs (``"as"``, ``"acs"`` or ``"mmas"``;
        part of the bucket key — a packed batch runs one variant).
    local_search / ls_passes / ls_target:
        Boundary-time local search (``"none"`` or ``"2opt"``, optional
        pass cap, polish target) — part of the bucket key, since a batch
        runs one local-search policy.  The ls knobs are only valid with an
        algorithm selected (accepting them with ``"none"`` would split
        buckets of execution-identical requests).
    """

    instance: TSPInstance
    params: ACOParams = field(default_factory=ACOParams)
    iterations: int = 20
    report_every: int = 1
    deadline: float | None = None
    target_length: int | None = None
    construction: int = 8
    pheromone: int = 1
    variant: str = "as"
    local_search: str = "none"
    ls_passes: int | None = None
    ls_target: str = "iteration-best"

    def __post_init__(self) -> None:
        from repro.core.variant import LOCAL_SEARCH, LS_TARGETS, VARIANTS

        if self.variant not in VARIANTS:
            raise ACOConfigError(
                f"unknown variant {self.variant!r}; valid: {sorted(VARIANTS)}"
            )
        if self.local_search not in LOCAL_SEARCH:
            raise ACOConfigError(
                f"unknown local search {self.local_search!r}; "
                f"valid: {sorted(LOCAL_SEARCH)}"
            )
        if self.ls_target not in LS_TARGETS:
            raise ACOConfigError(
                f"unknown ls target {self.ls_target!r}; "
                f"valid: {list(LS_TARGETS)}"
            )
        if self.ls_passes is not None and self.ls_passes < 1:
            raise ACOConfigError(
                f"ls_passes must be >= 1, got {self.ls_passes}"
            )
        if self.local_search == "none" and (
            self.ls_passes is not None or self.ls_target != "iteration-best"
        ):
            raise ACOConfigError(
                "ls_passes/ls_target require a local-search algorithm "
                "(got local_search='none')"
            )
        # Kernel selections a variant owns are rejected, never silently
        # ignored (the CLI contract) — and since ignored values would still
        # split BatchKey buckets, accepting them would also fragment the
        # packing of execution-identical requests.  The defaults (8 / 1)
        # pass, so clients spelling them out stay compatible.
        if self.variant == "acs" and self.construction != 8:
            raise ACOConfigError(
                "variant 'acs' owns its construction rule (pseudo-random-"
                "proportional); 'construction' is only valid with variant "
                "as/mmas"
            )
        if self.variant != "as" and self.pheromone != 1:
            raise ACOConfigError(
                f"variant {self.variant!r} owns its pheromone schedule; "
                "'pheromone' is only valid with variant 'as'"
            )
        if self.iterations < 1:
            raise ACOConfigError(
                f"iterations must be >= 1, got {self.iterations}"
            )
        if self.report_every < 1:
            raise ACOConfigError(
                f"report_every must be >= 1, got {self.report_every}"
            )
        if self.deadline is not None and self.deadline <= 0.0:
            raise ACOConfigError(f"deadline must be > 0, got {self.deadline}")
        if self.target_length is not None and self.target_length < 1:
            raise ACOConfigError(
                f"target_length must be >= 1, got {self.target_length}"
            )

    @property
    def bucket_key(self) -> BatchKey:
        n = self.instance.n
        return BatchKey(
            n=n,
            m=self.params.resolve_ants(n),
            nn=self.params.resolve_nn(n),
            iterations=self.iterations,
            report_every=self.report_every,
            construction=self.construction,
            pheromone=self.pheromone,
            variant=self.variant,
            local_search=self.local_search,
            ls_passes=self.ls_passes,
            ls_target=self.ls_target,
        )


@dataclass(frozen=True)
class SolveUpdate:
    """One streamed best-so-far observation for a single request."""

    iteration: int  #: engine iteration at the boundary
    best_length: int  #: this request's best tour length so far


_DONE = object()  # stream terminator sentinel


class SolveHandle:
    """Caller-side view of one submitted request.

    Async-iterate the handle to stream :class:`SolveUpdate` boundary
    observations (ends when the request resolves), and ``await
    handle.result()`` for the final :class:`~repro.core.colony.RunResult`.
    Both can be used together; the stream always delivers every boundary
    update *before* the result resolves.
    """

    def __init__(self, request: SolveRequest, loop: asyncio.AbstractEventLoop) -> None:
        self.request = request
        self._updates: asyncio.Queue = asyncio.Queue()
        self._result: asyncio.Future = loop.create_future()

    # ------------------------------------------------ service side (loop thread)

    def _push_update(self, update: SolveUpdate) -> None:
        if not self._result.done():
            self._updates.put_nowait(update)

    def _resolve(self, result: RunResult) -> None:
        if not self._result.done():
            self._result.set_result(result)
            self._updates.put_nowait(_DONE)

    def _reject(self, exc: BaseException) -> None:
        if not self._result.done():
            self._result.set_exception(exc)
            self._updates.put_nowait(_DONE)

    # ------------------------------------------------------------- caller side

    @property
    def done(self) -> bool:
        return self._result.done()

    async def result(self) -> RunResult:
        """The final result (bit-identical to a solo run unless the request
        resolved early on a deadline/target, in which case it is the
        best-so-far at the resolving boundary)."""
        return await asyncio.shield(self._result)

    async def __aiter__(self):
        while True:
            item = await self._updates.get()
            if item is _DONE:
                # Re-arm so a second iteration (or a late consumer) ends
                # immediately instead of hanging on an empty queue.
                self._updates.put_nowait(_DONE)
                return
            yield item


#: what ended a request: a full run, an early-out, or a failed batch
REQUEST_OUTCOMES = ("completed", "target", "deadline", "failed")

#: why a bucket launched: filled to ``max_batch``, aged past ``max_wait``,
#: or flushed by the drain path
FLUSH_CAUSES = ("full", "max_wait", "drain")


@dataclass
class ServiceStats:
    """Aggregate service counters plus request-lifecycle distributions.

    All throughput numbers derive from **batch-level** wall clocks
    (:attr:`~repro.core.batch.BatchRunResult.wall_seconds`), never from
    summed per-row shares — see :class:`~repro.core.batch.BatchRunResult`
    for why summing shares across batches under-reports.

    Distributions (queue wait, batch wall, end-to-end request latency,
    bucket occupancy at flush) live as reservoir histograms in
    :attr:`registry` — a :class:`~repro.obs.MetricsRegistry` whose
    snapshot the ``{"op": "stats"}`` admin line returns.

    Thread model: the ``observe_*`` mutators are called from the asyncio
    loop thread (submission, flushes, completed batches) **and** from
    engine worker threads (early resolutions happen inside the engine's
    ``on_boundary`` callback), so every mutation and :meth:`snapshot` hold
    :attr:`_lock` — unguarded ``+=`` from two threads can tear.
    """

    submitted: int = 0
    completed: int = 0  #: resolved with a full run
    resolved_by_target: int = 0
    resolved_by_deadline: int = 0
    failed: int = 0
    batches: int = 0
    rows_packed: int = 0  #: total rows across all batches (sum of B)
    ls_batches: int = 0  #: batches that ran with local search enabled
    batches_per_bucket: dict[BatchKey, int] = field(default_factory=dict)
    rows_per_bucket: dict[BatchKey, int] = field(default_factory=dict)
    flush_causes: dict[str, int] = field(
        default_factory=lambda: dict.fromkeys(FLUSH_CAUSES, 0)
    )
    engine_wall_seconds: float = 0.0  #: sum of batch-level walls
    colony_iterations: int = 0  #: sum over batches of B * iterations_run
    registry: MetricsRegistry = field(
        default_factory=MetricsRegistry, repr=False
    )

    def __post_init__(self) -> None:
        self._lock = threading.Lock()
        self.queue_wait = self.registry.histogram("serve.queue_wait_seconds")
        self.batch_wall = self.registry.histogram("serve.batch_wall_seconds")
        self.request_latency = self.registry.histogram(
            "serve.request_latency_seconds"
        )
        self.batch_rows = self.registry.histogram("serve.batch_rows")

    # ----------------------------------------------------------- observation

    def observe_submitted(self) -> None:
        with self._lock:
            self.submitted += 1

    def observe_flush(
        self, key: BatchKey, cause: str, queue_waits: list[float]
    ) -> None:
        """One bucket launch: why it flushed, how full it was, and how long
        each packed request had queued."""
        if cause not in self.flush_causes:
            raise ACOConfigError(
                f"unknown flush cause {cause!r}; valid: {FLUSH_CAUSES}"
            )
        with self._lock:
            self.flush_causes[cause] += 1
            self.rows_per_bucket[key] = (
                self.rows_per_bucket.get(key, 0) + len(queue_waits)
            )
        self.registry.inc(f"serve.flush.{cause}")
        self.batch_rows.observe(len(queue_waits))
        for wait in queue_waits:
            self.queue_wait.observe(wait)

    def observe_batch(self, key: BatchKey, batch: BatchRunResult) -> None:
        """One finished engine run (loop thread, after the worker returns)."""
        with self._lock:
            self.batches += 1
            self.rows_packed += batch.B
            if key.local_search != "none":
                self.ls_batches += 1
            self.batches_per_bucket[key] = (
                self.batches_per_bucket.get(key, 0) + 1
            )
            self.engine_wall_seconds += batch.wall_seconds
            self.colony_iterations += batch.B * batch.iterations_run
        self.batch_wall.observe(batch.wall_seconds)

    # Retained name from the batch-sums-only era; same locked mutation.
    record_batch = observe_batch

    def observe_resolution(self, outcome: str, latency: float) -> None:
        """One request reaching its terminal state; ``latency`` is seconds
        from submission.  Early outcomes (``target``/``deadline``) are
        recorded from engine **worker threads** at the resolving boundary
        — the reason every counter here is lock-guarded."""
        if outcome not in REQUEST_OUTCOMES:
            raise ACOConfigError(
                f"unknown outcome {outcome!r}; valid: {REQUEST_OUTCOMES}"
            )
        with self._lock:
            if outcome == "completed":
                self.completed += 1
            elif outcome == "target":
                self.resolved_by_target += 1
            elif outcome == "deadline":
                self.resolved_by_deadline += 1
            else:
                self.failed += 1
        self.request_latency.observe(latency)
        self.registry.inc(f"serve.resolved.{outcome}")

    # ------------------------------------------------------------- summaries

    @property
    def mean_batch_size(self) -> float:
        if not self.batches:
            return 0.0
        return self.rows_packed / self.batches

    @property
    def colonies_per_second(self) -> float:
        """Colony-iterations per second of **engine** wall time."""
        if self.engine_wall_seconds <= 0.0:
            return 0.0
        return self.colony_iterations / self.engine_wall_seconds

    @property
    def batches_per_variant(self) -> dict[str, int]:
        """Batch counts keyed by ACO variant (folded over bucket keys)."""
        counts: dict[str, int] = {}
        for key, n in self.batches_per_bucket.items():
            counts[key.variant] = counts.get(key.variant, 0) + n
        return counts

    def snapshot(self) -> dict:
        """A JSON-friendly summary (the ``{"op": "stats"}`` wire payload).

        Batch-level sums plus the request-lifecycle distributions
        (count/mean/p50/p95/p99/max per histogram).
        """
        with self._lock:
            summary = {
                "submitted": self.submitted,
                "completed": self.completed,
                "resolved_by_target": self.resolved_by_target,
                "resolved_by_deadline": self.resolved_by_deadline,
                "failed": self.failed,
                "batches": self.batches,
                "rows_packed": self.rows_packed,
                "ls_batches": self.ls_batches,
                "batches_per_variant": self.batches_per_variant,
                # BatchKey tuples stringified for the JSON wire.
                "rows_per_bucket": {
                    str(k): v for k, v in sorted(
                        self.rows_per_bucket.items(), key=lambda kv: str(kv[0])
                    )
                },
                "mean_batch_size": round(self.mean_batch_size, 3),
                "engine_wall_seconds": round(self.engine_wall_seconds, 6),
                "colony_iterations": self.colony_iterations,
                "colonies_per_second": round(self.colonies_per_second, 3),
                "flush_causes": dict(self.flush_causes),
            }
        summary["queue_wait_seconds"] = self.queue_wait.snapshot()
        summary["batch_wall_seconds"] = self.batch_wall.snapshot()
        summary["request_latency_seconds"] = self.request_latency.snapshot()
        summary["batch_rows"] = self.batch_rows.snapshot()
        return summary


class _Pending:
    """Book-keeping wrapper pairing a request with its handle.

    ``resolved``/``early`` are written by the worker thread while its batch
    runs and read on the loop thread only after the run completes (the
    executor-future completion is the synchronisation point).
    """

    __slots__ = ("request", "handle", "submitted_at", "deadline_at", "resolved", "early")

    def __init__(self, request: SolveRequest, handle: SolveHandle, now: float) -> None:
        self.request = request
        self.handle = handle
        self.submitted_at = now
        self.deadline_at = None if request.deadline is None else now + request.deadline
        self.resolved = False
        self.early: str | None = None  # "target" | "deadline"


class SolveService:
    """Asyncio solve service packing concurrent requests into shared batches.

    Parameters
    ----------
    max_batch:
        Largest batch one engine run may hold (``B``).  A bucket launches
        immediately when it fills to ``max_batch``.
    max_wait:
        Seconds a queued request may age before its bucket is flushed as a
        partial batch — the latency/packing trade-off knob.
    workers:
        Engine worker threads; each owns a private
        :class:`~repro.backend.WorkBuffers` arena reused across batches.
    max_pending:
        Backpressure bound on requests in flight (queued + running).
        :meth:`submit` suspends the caller while the service is at the
        bound; :meth:`submit_nowait` raises
        :class:`~repro.errors.ServiceOverloadedError` instead.
    backend / device / amortize:
        Engine construction knobs, shared by every batch.

    Use as an async context manager (``async with SolveService(...) as s:``)
    or call :meth:`start` / :meth:`drain` explicitly.  :meth:`drain` is the
    graceful shutdown path: stop accepting, flush queued requests as final
    (possibly partial) batches, wait for in-flight engine runs, then close
    every stream.
    """

    def __init__(
        self,
        *,
        max_batch: int = 8,
        max_wait: float = 0.05,
        workers: int = 1,
        max_pending: int = 256,
        backend=None,
        device: DeviceSpec = TESLA_M2050,
        amortize: bool = True,
    ) -> None:
        if max_batch < 1:
            raise ACOConfigError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait < 0.0:
            raise ACOConfigError(f"max_wait must be >= 0, got {max_wait}")
        if workers < 1:
            raise ACOConfigError(f"workers must be >= 1, got {workers}")
        if max_pending < max_batch:
            raise ACOConfigError(
                f"max_pending ({max_pending}) must be >= max_batch ({max_batch})"
            )
        self.max_batch = max_batch
        self.max_wait = max_wait
        self.workers = workers
        self.max_pending = max_pending
        self.device = device
        self.amortize = amortize
        self._backend = resolve_backend(backend)
        self.stats = ServiceStats()
        self._buckets: dict[BatchKey, deque[_Pending]] = {}
        self._inflight: set[asyncio.Task] = set()
        self._accepting = False
        self._closed = False
        self._loop: asyncio.AbstractEventLoop | None = None
        self._dispatcher: asyncio.Task | None = None
        self._wake: asyncio.Event | None = None
        self._slots: asyncio.Semaphore | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._tls = threading.local()

    # ---------------------------------------------------------------- lifecycle

    async def start(self) -> "SolveService":
        """Bind to the running loop and start accepting requests."""
        if self._closed:
            raise ServiceClosedError("service already drained; create a new one")
        if self._accepting:
            return self
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._slots = asyncio.Semaphore(self.max_pending)
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="aco-serve"
        )
        self._accepting = True
        self._dispatcher = asyncio.create_task(
            self._dispatch_loop(), name="aco-serve-dispatcher"
        )
        return self

    async def __aenter__(self) -> "SolveService":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.drain()

    async def drain(self) -> None:
        """Graceful shutdown: refuse new work, finish everything accepted.

        Queued requests are flushed immediately as final (possibly
        undersized) batches, in-flight engine runs complete, every stream
        is terminated, then the worker pool shuts down.  Idempotent.
        """
        if self._closed:
            return
        self._accepting = False
        if self._loop is not None:
            self._flush_all()
            while self._inflight:
                await asyncio.gather(*list(self._inflight), return_exceptions=True)
            if self._dispatcher is not None:
                self._dispatcher.cancel()
                try:
                    await self._dispatcher
                except asyncio.CancelledError:
                    pass
                self._dispatcher = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self._closed = True

    @property
    def accepting(self) -> bool:
        return self._accepting

    @property
    def pending(self) -> int:
        """Requests queued in buckets (not yet launched)."""
        return sum(len(q) for q in self._buckets.values())

    # --------------------------------------------------------------- submission

    def _make_pending(self, request: SolveRequest) -> SolveHandle:
        assert self._loop is not None
        handle = SolveHandle(request, self._loop)
        pending = _Pending(request, handle, time.monotonic())
        key = request.bucket_key
        bucket = self._buckets.setdefault(key, deque())
        bucket.append(pending)
        self.stats.observe_submitted()
        if len(bucket) >= self.max_batch:
            # Launch-on-full keeps packing deterministic and latency minimal:
            # the request that fills a bucket dispatches it synchronously.
            self._launch(
                key,
                [bucket.popleft() for _ in range(self.max_batch)],
                cause="full",
            )
            if not bucket:
                del self._buckets[key]
        else:
            assert self._wake is not None
            self._wake.set()  # dispatcher recomputes its flush timeout
        return handle

    async def submit(self, request: SolveRequest) -> SolveHandle:
        """Queue a request, suspending under backpressure.

        Suspends while ``max_pending`` requests are in flight (the
        backpressure path), raises
        :class:`~repro.errors.ServiceClosedError` once draining has begun.
        """
        if not self._accepting:
            raise ServiceClosedError("service is not accepting requests")
        assert self._slots is not None
        await self._slots.acquire()
        if not self._accepting:
            # Drain began while we waited for capacity.
            self._slots.release()
            raise ServiceClosedError("service drained while awaiting capacity")
        return self._make_pending(request)

    def submit_nowait(self, request: SolveRequest) -> SolveHandle:
        """Like :meth:`submit` but raises
        :class:`~repro.errors.ServiceOverloadedError` instead of waiting
        when the service is at its ``max_pending`` bound."""
        if not self._accepting:
            raise ServiceClosedError("service is not accepting requests")
        assert self._slots is not None
        # Semaphore.acquire completes synchronously when a slot is free;
        # drive the coroutine one step instead of suspending the caller.
        coro = self._slots.acquire()
        acquired = False
        try:
            coro.send(None)
        except StopIteration:
            acquired = True
        finally:
            if not acquired:
                coro.close()
        if not acquired:
            raise ServiceOverloadedError(
                f"service at capacity ({self.max_pending} requests in flight)"
            )
        return self._make_pending(request)

    # --------------------------------------------------------------- dispatcher

    async def _dispatch_loop(self) -> None:
        """Flush buckets whose oldest request has aged past ``max_wait``."""
        assert self._wake is not None
        while True:
            self._wake.clear()
            next_due = self._flush_due()
            timeout = None
            if next_due is not None:
                timeout = max(next_due - time.monotonic(), 0.0)
            try:
                await asyncio.wait_for(self._wake.wait(), timeout)
            except asyncio.TimeoutError:
                pass

    def _flush_due(self) -> float | None:
        """Launch every overdue bucket; return the next flush deadline."""
        now = time.monotonic()
        next_due: float | None = None
        # Emptied buckets are deleted (not kept as dead deques): under
        # diverse traffic the dict would otherwise grow with every BatchKey
        # ever seen and each pass here would scan all of them.
        for key, bucket in list(self._buckets.items()):
            while bucket and bucket[0].submitted_at + self.max_wait <= now:
                pack = [
                    bucket.popleft()
                    for _ in range(min(len(bucket), self.max_batch))
                ]
                self._launch(key, pack, cause="max_wait")
            if bucket:
                due = bucket[0].submitted_at + self.max_wait
                next_due = due if next_due is None else min(next_due, due)
            else:
                del self._buckets[key]
        return next_due

    def _flush_all(self) -> None:
        """Launch every queued request immediately (the drain path)."""
        for key, bucket in list(self._buckets.items()):
            while bucket:
                pack = [
                    bucket.popleft()
                    for _ in range(min(len(bucket), self.max_batch))
                ]
                self._launch(key, pack, cause="drain")
            del self._buckets[key]

    def _launch(
        self, key: BatchKey, pack: list[_Pending], *, cause: str
    ) -> None:
        now = time.monotonic()
        self.stats.observe_flush(
            key, cause, [now - p.submitted_at for p in pack]
        )
        task = asyncio.create_task(
            self._run_and_resolve(key, pack), name=f"aco-serve-batch-{key.n}"
        )
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    # ------------------------------------------------------------------ workers

    async def _run_and_resolve(self, key: BatchKey, pack: list[_Pending]) -> None:
        assert self._loop is not None and self._executor is not None
        try:
            batch = await self._loop.run_in_executor(
                self._executor, self._run_batch_sync, key, pack
            )
        except asyncio.CancelledError:
            raise
        except BaseException as exc:  # incl. stray interrupts: never hang riders
            wrapped = ServeError(f"batch execution failed: {exc!r}")
            wrapped.__cause__ = exc
            now = time.monotonic()
            for p in pack:
                # Early-resolved riders already hold their snapshot result
                # and were counted at their resolving boundary (on the
                # worker thread); only live riders become failures.
                if not p.resolved:
                    p.resolved = True
                    self.stats.observe_resolution(
                        "failed", now - p.submitted_at
                    )
                    p.handle._reject(wrapped)
        else:
            self.stats.observe_batch(key, batch)
            now = time.monotonic()
            for p, row in zip(pack, batch.results):
                if not p.resolved:
                    p.resolved = True
                    self.stats.observe_resolution(
                        "completed", now - p.submitted_at
                    )
                    p.handle._resolve(row)
        finally:
            assert self._slots is not None and self._wake is not None
            for _ in pack:
                self._slots.release()
            self._wake.set()

    def _worker_arena(self) -> WorkBuffers:
        """The calling worker thread's private scratch arena (one per
        worker, reused across batches — the cross-engine amortisation
        seam)."""
        work = getattr(self._tls, "work", None)
        if work is None:
            work = WorkBuffers(self._backend)
            self._tls.work = work
        return work

    def _run_batch_sync(self, key: BatchKey, pack: list[_Pending]) -> BatchRunResult:
        """Engine run on a worker thread: build, stream boundaries, return.

        Per-boundary duties (all through ``call_soon_threadsafe``): push a
        :class:`SolveUpdate` to every live rider, resolve riders whose
        target length is met or whose deadline expired, and stop the batch
        early once every rider has resolved.
        """
        engine = BatchEngine(
            [p.request.instance for p in pack],
            [p.request.params for p in pack],
            device=self.device,
            construction=key.construction,
            pheromone=key.pheromone,
            backend=self._backend,
            amortize=self.amortize,
            work=self._worker_arena() if self.amortize else None,
            variant=key.variant,
            local_search=key.local_search,
            local_search_options=(
                {"passes": key.ls_passes, "target": key.ls_target}
                if key.local_search != "none"
                else None
            ),
        )
        loop = self._loop
        assert loop is not None
        run_start = time.monotonic()

        def on_boundary(update: BoundaryUpdate) -> bool:
            now = time.monotonic()
            all_resolved = True
            for b, p in enumerate(pack):
                if p.resolved:
                    continue
                best = int(update.best_lengths[b])
                loop.call_soon_threadsafe(
                    p.handle._push_update,
                    SolveUpdate(iteration=update.iteration, best_length=best),
                )
                hit_target = (
                    p.request.target_length is not None
                    and best <= p.request.target_length
                )
                expired = p.deadline_at is not None and now >= p.deadline_at
                if hit_target or expired:
                    # Early resolution: best-so-far snapshot.  No iteration
                    # traces (they live batch-side until the run ends);
                    # wall_seconds is the true batch wall at this boundary.
                    row = RunResult(
                        best_tour=update.best_tours[b].copy(),
                        best_length=best,
                        iteration_best_lengths=[],
                        reports=[],
                        wall_seconds=now - run_start,
                        device=self.device,
                    )
                    p.resolved = True
                    p.early = "target" if hit_target else "deadline"
                    # Worker-thread stats mutation: ServiceStats locks
                    # internally, so this cannot tear against the loop
                    # thread's counters.
                    self.stats.observe_resolution(p.early, now - p.submitted_at)
                    loop.call_soon_threadsafe(p.handle._resolve, row)
                else:
                    all_resolved = False
            return all_resolved

        return engine.run(
            key.iterations, report_every=key.report_every, on_boundary=on_boundary
        )
