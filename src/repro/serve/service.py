"""Async micro-batching solve service: request packing over the batch engine.

The paper's throughput comes from keeping many ants and colonies resident
on the device at once; production traffic arrives as *small individual
solve requests*.  This module closes that gap the way GPU ACO serving
systems do (Skinderowicz 2016; the ICACIT 2014 GPGPU-ACO overview): a
queueing front-end **manufactures batches** out of concurrent requests.

Requests are bucketed by everything a :class:`~repro.core.batch.BatchEngine`
requires rows to share — instance size ``n``, colony size ``m``, candidate
width ``nn``, iteration budget, ``report_every`` and the kernel pair — and
packed, up to ``max_batch`` per batch with a ``max_wait`` age bound, into
single vectorized engine runs on worker threads.  Per-row params (seed,
alpha, beta, rho, eta_shift) and per-row *instances* may differ freely: the
engine's solo-equivalence invariant guarantees each packed row is
bit-identical to a solo run of that request, so packing is a pure
throughput transform with no numerical caveat.

Streaming rides the engine's ``on_boundary`` hook: at every ``report_every``
boundary each caller receives a :class:`SolveUpdate` with its row's
best-so-far, and per-request deadlines / target lengths resolve early —
the whole batch stops as soon as every rider is satisfied.

Concurrency model: one asyncio event loop owns all queues, handles and
bookkeeping; engine runs execute in a :class:`~concurrent.futures.
ThreadPoolExecutor` (numpy/CuPy kernels release the GIL), each worker
thread owning a private :class:`~repro.backend.WorkBuffers` arena reused
across batches.  Worker threads talk back only via
``loop.call_soon_threadsafe``.
"""

from __future__ import annotations

import asyncio
import itertools
import random
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import NamedTuple

from repro.backend import WorkBuffers, resolve_backend
from repro.core.batch import BatchEngine, BatchRunResult, BoundaryUpdate
from repro.core.colony import RunResult
from repro.core.params import ACOParams
from repro.errors import (
    ACOConfigError,
    ServeError,
    ServeTimeoutError,
    ServiceClosedError,
    ServiceOverloadedError,
)
from repro.obs import MetricsRegistry
from repro.serve.faults import FaultInjector, FaultPlan
from repro.simt.device import TESLA_M2050, DeviceSpec
from repro.tsp.instance import TSPInstance

__all__ = [
    "BatchKey",
    "ServiceStats",
    "SolveHandle",
    "SolveRequest",
    "SolveService",
    "SolveUpdate",
]


class BatchKey(NamedTuple):
    """Everything packed rows must share: the size-bucket queue key.

    Two requests land in the same bucket iff an engine batch can legally
    hold both as rows — equal array geometry (``n``, ``m``, ``nn``), equal
    iteration schedule, one kernel pair and one ACO variant (a batch runs
    a single :class:`~repro.core.variant.VariantStrategy`).  Per-row
    params and instance *data* are free to differ.
    """

    n: int
    m: int
    nn: int
    iterations: int
    report_every: int
    construction: int
    pheromone: int
    variant: str = "as"
    local_search: str = "none"
    ls_passes: int | None = None
    ls_target: str = "iteration-best"


@dataclass(frozen=True)
class SolveRequest:
    """One caller's solve job, as queued by :class:`SolveService`.

    Attributes
    ----------
    instance / params:
        What a solo :class:`~repro.core.AntSystem` would take; results are
        bit-identical to that solo run (unless resolved early).
    iterations:
        Iteration budget.
    report_every:
        Streaming granularity: the caller receives one :class:`SolveUpdate`
        per K-iteration boundary.  Larger K amortises host transfers
        exactly as in :meth:`~repro.core.batch.BatchEngine.run`.
    deadline:
        Optional wall-clock budget in **seconds from submission**.  At the
        first boundary past the deadline the request resolves with its
        best-so-far (the batch keeps running for co-packed riders that
        still have budget).
    target_length:
        Optional solution-quality early-out: resolve at the first boundary
        whose best is at or below this length.
    construction / pheromone:
        Kernel versions (part of the bucket key).
    variant:
        ACO variant the request runs (``"as"``, ``"acs"`` or ``"mmas"``;
        part of the bucket key — a packed batch runs one variant).
    local_search / ls_passes / ls_target:
        Boundary-time local search (``"none"`` or ``"2opt"``, optional
        pass cap, polish target) — part of the bucket key, since a batch
        runs one local-search policy.  The ls knobs are only valid with an
        algorithm selected (accepting them with ``"none"`` would split
        buckets of execution-identical requests).
    timeout:
        Optional hard wall-clock budget in **seconds from submission**.
        Unlike ``deadline`` (which resolves with the best-so-far), a
        timed-out request **fails** with
        :class:`~repro.errors.ServeTimeoutError`.  Enforced lazily at
        scheduling points — batch launch, report boundaries, and retry
        time — not by a per-request timer.
    priority:
        Load-shed ordering (higher = more important, default 0).  When
        :meth:`SolveService.submit_nowait` finds the service at capacity
        it sheds the lowest-priority queued request that ranks strictly
        below the newcomer before refusing.  Not part of the bucket key —
        priorities pack together; they only decide who is shed first.
    """

    instance: TSPInstance
    params: ACOParams = field(default_factory=ACOParams)
    iterations: int = 20
    report_every: int = 1
    deadline: float | None = None
    target_length: int | None = None
    construction: int = 8
    pheromone: int = 1
    variant: str = "as"
    local_search: str = "none"
    ls_passes: int | None = None
    ls_target: str = "iteration-best"
    timeout: float | None = None
    priority: int = 0

    def __post_init__(self) -> None:
        from repro.core.variant import LOCAL_SEARCH, LS_TARGETS, VARIANTS

        if self.variant not in VARIANTS:
            raise ACOConfigError(
                f"unknown variant {self.variant!r}; valid: {sorted(VARIANTS)}"
            )
        if self.local_search not in LOCAL_SEARCH:
            raise ACOConfigError(
                f"unknown local search {self.local_search!r}; "
                f"valid: {sorted(LOCAL_SEARCH)}"
            )
        if self.ls_target not in LS_TARGETS:
            raise ACOConfigError(
                f"unknown ls target {self.ls_target!r}; "
                f"valid: {list(LS_TARGETS)}"
            )
        if self.ls_passes is not None and self.ls_passes < 1:
            raise ACOConfigError(
                f"ls_passes must be >= 1, got {self.ls_passes}"
            )
        if self.local_search == "none" and (
            self.ls_passes is not None or self.ls_target != "iteration-best"
        ):
            raise ACOConfigError(
                "ls_passes/ls_target require a local-search algorithm "
                "(got local_search='none')"
            )
        # Kernel selections a variant owns are rejected, never silently
        # ignored (the CLI contract) — and since ignored values would still
        # split BatchKey buckets, accepting them would also fragment the
        # packing of execution-identical requests.  The defaults (8 / 1)
        # pass, so clients spelling them out stay compatible.
        if self.variant == "acs" and self.construction != 8:
            raise ACOConfigError(
                "variant 'acs' owns its construction rule (pseudo-random-"
                "proportional); 'construction' is only valid with variant "
                "as/mmas"
            )
        if self.variant != "as" and self.pheromone != 1:
            raise ACOConfigError(
                f"variant {self.variant!r} owns its pheromone schedule; "
                "'pheromone' is only valid with variant 'as'"
            )
        if self.iterations < 1:
            raise ACOConfigError(
                f"iterations must be >= 1, got {self.iterations}"
            )
        if self.report_every < 1:
            raise ACOConfigError(
                f"report_every must be >= 1, got {self.report_every}"
            )
        if self.deadline is not None and self.deadline <= 0.0:
            raise ACOConfigError(f"deadline must be > 0, got {self.deadline}")
        if self.timeout is not None and self.timeout <= 0.0:
            raise ACOConfigError(f"timeout must be > 0, got {self.timeout}")
        if self.target_length is not None and self.target_length < 1:
            raise ACOConfigError(
                f"target_length must be >= 1, got {self.target_length}"
            )

    @property
    def bucket_key(self) -> BatchKey:
        n = self.instance.n
        return BatchKey(
            n=n,
            m=self.params.resolve_ants(n),
            nn=self.params.resolve_nn(n),
            iterations=self.iterations,
            report_every=self.report_every,
            construction=self.construction,
            pheromone=self.pheromone,
            variant=self.variant,
            local_search=self.local_search,
            ls_passes=self.ls_passes,
            ls_target=self.ls_target,
        )


@dataclass(frozen=True)
class SolveUpdate:
    """One streamed best-so-far observation for a single request."""

    iteration: int  #: engine iteration at the boundary
    best_length: int  #: this request's best tour length so far


_DONE = object()  # stream terminator sentinel


class SolveHandle:
    """Caller-side view of one submitted request.

    Async-iterate the handle to stream :class:`SolveUpdate` boundary
    observations (ends when the request resolves), and ``await
    handle.result()`` for the final :class:`~repro.core.colony.RunResult`.
    Both can be used together; the stream always delivers every boundary
    update *before* the result resolves.
    """

    def __init__(self, request: SolveRequest, loop: asyncio.AbstractEventLoop) -> None:
        self.request = request
        self._updates: asyncio.Queue = asyncio.Queue()
        self._result: asyncio.Future = loop.create_future()

    # ------------------------------------------------ service side (loop thread)

    def _push_update(self, update: SolveUpdate) -> None:
        if not self._result.done():
            self._updates.put_nowait(update)

    def _resolve(self, result: RunResult) -> None:
        if not self._result.done():
            self._result.set_result(result)
            self._updates.put_nowait(_DONE)

    def _reject(self, exc: BaseException) -> None:
        if not self._result.done():
            self._result.set_exception(exc)
            self._updates.put_nowait(_DONE)

    # ------------------------------------------------------------- caller side

    @property
    def done(self) -> bool:
        return self._result.done()

    async def result(self) -> RunResult:
        """The final result (bit-identical to a solo run unless the request
        resolved early on a deadline/target, in which case it is the
        best-so-far at the resolving boundary)."""
        return await asyncio.shield(self._result)

    async def __aiter__(self):
        while True:
            item = await self._updates.get()
            if item is _DONE:
                # Re-arm so a second iteration (or a late consumer) ends
                # immediately instead of hanging on an empty queue.
                self._updates.put_nowait(_DONE)
                return
            yield item


#: what ended a request: a full run, an early-out, a failed batch, a
#: hard wall-clock timeout, or a load-shed eviction
REQUEST_OUTCOMES = ("completed", "target", "deadline", "failed", "timeout", "shed")

#: why a bucket launched: filled to ``max_batch``, aged past ``max_wait``,
#: or flushed by the drain path
FLUSH_CAUSES = ("full", "max_wait", "drain")


@dataclass
class ServiceStats:
    """Aggregate service counters plus request-lifecycle distributions.

    All throughput numbers derive from **batch-level** wall clocks
    (:attr:`~repro.core.batch.BatchRunResult.wall_seconds`), never from
    summed per-row shares — see :class:`~repro.core.batch.BatchRunResult`
    for why summing shares across batches under-reports.

    Distributions (queue wait, batch wall, end-to-end request latency,
    bucket occupancy at flush) live as reservoir histograms in
    :attr:`registry` — a :class:`~repro.obs.MetricsRegistry` whose
    snapshot the ``{"op": "stats"}`` admin line returns.

    Thread model: the ``observe_*`` mutators are called from the asyncio
    loop thread (submission, flushes, completed batches) **and** from
    engine worker threads (early resolutions happen inside the engine's
    ``on_boundary`` callback), so every mutation and :meth:`snapshot` hold
    :attr:`_lock` — unguarded ``+=`` from two threads can tear.
    """

    submitted: int = 0  # guarded-by: _lock
    completed: int = 0  #: resolved with a full run — guarded-by: _lock
    resolved_by_target: int = 0  # guarded-by: _lock
    resolved_by_deadline: int = 0  # guarded-by: _lock
    failed: int = 0  # guarded-by: _lock
    requests_timed_out: int = 0  #: hard wall-clock timeouts — guarded-by: _lock
    requests_shed: int = 0  #: load-shed evictions — guarded-by: _lock
    requests_retried: int = 0  #: rows re-run after a batch failure — guarded-by: _lock
    batches_bisected: int = 0  #: failed packs split for quarantine — guarded-by: _lock
    checkpoints_written: int = 0  #: engine checkpoints persisted — guarded-by: _lock
    batches: int = 0  # guarded-by: _lock
    rows_packed: int = 0  #: total rows across all batches — guarded-by: _lock
    ls_batches: int = 0  #: batches with local search enabled — guarded-by: _lock
    batches_per_bucket: dict[BatchKey, int] = field(default_factory=dict)  # guarded-by: _lock
    rows_per_bucket: dict[BatchKey, int] = field(default_factory=dict)  # guarded-by: _lock
    # guarded-by: _lock
    flush_causes: dict[str, int] = field(
        default_factory=lambda: dict.fromkeys(FLUSH_CAUSES, 0)
    )
    engine_wall_seconds: float = 0.0  #: sum of batch-level walls — guarded-by: _lock
    colony_iterations: int = 0  #: sum of B * iterations_run — guarded-by: _lock
    registry: MetricsRegistry = field(
        default_factory=MetricsRegistry, repr=False
    )

    def __post_init__(self) -> None:
        self._lock = threading.Lock()
        self.queue_wait = self.registry.histogram("serve.queue_wait_seconds")
        self.batch_wall = self.registry.histogram("serve.batch_wall_seconds")
        self.request_latency = self.registry.histogram(
            "serve.request_latency_seconds"
        )
        self.batch_rows = self.registry.histogram("serve.batch_rows")

    # ----------------------------------------------------------- observation

    def observe_submitted(self) -> None:
        with self._lock:
            self.submitted += 1

    def observe_flush(
        self, key: BatchKey, cause: str, queue_waits: list[float]
    ) -> None:
        """One bucket launch: why it flushed, how full it was, and how long
        each packed request had queued."""
        if cause not in self.flush_causes:
            raise ACOConfigError(
                f"unknown flush cause {cause!r}; valid: {FLUSH_CAUSES}"
            )
        with self._lock:
            self.flush_causes[cause] += 1
            self.rows_per_bucket[key] = (
                self.rows_per_bucket.get(key, 0) + len(queue_waits)
            )
        self.registry.inc(f"serve.flush.{cause}")
        self.batch_rows.observe(len(queue_waits))
        for wait in queue_waits:
            self.queue_wait.observe(wait)

    def observe_batch(self, key: BatchKey, batch: BatchRunResult) -> None:
        """One finished engine run (loop thread, after the worker returns)."""
        with self._lock:
            self.batches += 1
            self.rows_packed += batch.B
            if key.local_search != "none":
                self.ls_batches += 1
            self.batches_per_bucket[key] = (
                self.batches_per_bucket.get(key, 0) + 1
            )
            self.engine_wall_seconds += batch.wall_seconds
            self.colony_iterations += batch.B * batch.iterations_run
        self.batch_wall.observe(batch.wall_seconds)

    # Retained name from the batch-sums-only era; same locked mutation.
    record_batch = observe_batch

    def observe_resolution(self, outcome: str, latency: float) -> None:
        """One request reaching its terminal state; ``latency`` is seconds
        from submission.  Early outcomes (``target``/``deadline``) are
        recorded from engine **worker threads** at the resolving boundary
        — the reason every counter here is lock-guarded."""
        if outcome not in REQUEST_OUTCOMES:
            raise ACOConfigError(
                f"unknown outcome {outcome!r}; valid: {REQUEST_OUTCOMES}"
            )
        with self._lock:
            if outcome == "completed":
                self.completed += 1
            elif outcome == "target":
                self.resolved_by_target += 1
            elif outcome == "deadline":
                self.resolved_by_deadline += 1
            elif outcome == "timeout":
                self.requests_timed_out += 1
            elif outcome == "shed":
                self.requests_shed += 1
            else:
                self.failed += 1
        self.request_latency.observe(latency)
        self.registry.inc(f"serve.resolved.{outcome}")

    def observe_retry(self, rows: int) -> None:
        """``rows`` requests being re-run after their batch failed (worker
        failures are observed on the loop thread, but keep the lock — the
        snapshot path reads from anywhere)."""
        with self._lock:
            self.requests_retried += rows
        self.registry.inc("serve.requests_retried", rows)

    def observe_bisection(self) -> None:
        """One failed pack split into halves for quarantine."""
        with self._lock:
            self.batches_bisected += 1
        self.registry.inc("serve.batches_bisected")

    def observe_checkpoint(self) -> None:
        """One engine checkpoint written (worker thread)."""
        with self._lock:
            self.checkpoints_written += 1
        self.registry.inc("serve.checkpoints_written")

    # ------------------------------------------------------------- summaries

    @property
    def mean_batch_size(self) -> float:
        if not self.batches:
            return 0.0
        return self.rows_packed / self.batches

    @property
    def colonies_per_second(self) -> float:
        """Colony-iterations per second of **engine** wall time."""
        if self.engine_wall_seconds <= 0.0:
            return 0.0
        return self.colony_iterations / self.engine_wall_seconds

    @property
    def batches_per_variant(self) -> dict[str, int]:
        """Batch counts keyed by ACO variant (folded over bucket keys)."""
        counts: dict[str, int] = {}
        for key, n in self.batches_per_bucket.items():
            counts[key.variant] = counts.get(key.variant, 0) + n
        return counts

    def snapshot(self) -> dict:
        """A JSON-friendly summary (the ``{"op": "stats"}`` wire payload).

        Batch-level sums plus the request-lifecycle distributions
        (count/mean/p50/p95/p99/max per histogram).
        """
        with self._lock:
            summary = {
                # Which tier produced this payload: a worker shard answers
                # "service"; the shard router's fold answers "router".
                "source": "service",
                "submitted": self.submitted,
                "completed": self.completed,
                "resolved_by_target": self.resolved_by_target,
                "resolved_by_deadline": self.resolved_by_deadline,
                "failed": self.failed,
                "requests_timed_out": self.requests_timed_out,
                "requests_shed": self.requests_shed,
                "requests_retried": self.requests_retried,
                "batches_bisected": self.batches_bisected,
                "checkpoints_written": self.checkpoints_written,
                "batches": self.batches,
                "rows_packed": self.rows_packed,
                "ls_batches": self.ls_batches,
                "batches_per_variant": self.batches_per_variant,
                # BatchKey tuples stringified for the JSON wire.
                "rows_per_bucket": {
                    str(k): v for k, v in sorted(
                        self.rows_per_bucket.items(), key=lambda kv: str(kv[0])
                    )
                },
                "mean_batch_size": round(self.mean_batch_size, 3),
                "engine_wall_seconds": round(self.engine_wall_seconds, 6),
                "colony_iterations": self.colony_iterations,
                "colonies_per_second": round(self.colonies_per_second, 3),
                "flush_causes": dict(self.flush_causes),
            }
        summary["queue_wait_seconds"] = self.queue_wait.snapshot()
        summary["batch_wall_seconds"] = self.batch_wall.snapshot()
        summary["request_latency_seconds"] = self.request_latency.snapshot()
        summary["batch_rows"] = self.batch_rows.snapshot()
        return summary


class _Pending:
    """Book-keeping wrapper pairing a request with its handle.

    ``resolved``/``early`` are written by the worker thread while its batch
    runs and read on the loop thread only after the run completes (the
    executor-future completion is the synchronisation point).
    """

    __slots__ = (
        "request",
        "handle",
        "submitted_at",
        "deadline_at",
        "timeout_at",
        "retries_left",
        "resolved",
        "early",
    )

    def __init__(
        self,
        request: SolveRequest,
        handle: SolveHandle,
        now: float,
        retry_budget: int = 0,
    ) -> None:
        self.request = request
        self.handle = handle
        self.submitted_at = now
        self.deadline_at = None if request.deadline is None else now + request.deadline
        self.timeout_at = None if request.timeout is None else now + request.timeout
        self.retries_left = retry_budget
        self.resolved = False
        self.early: str | None = None  # "target" | "deadline"


class SolveService:
    """Asyncio solve service packing concurrent requests into shared batches.

    Parameters
    ----------
    max_batch:
        Largest batch one engine run may hold (``B``).  A bucket launches
        immediately when it fills to ``max_batch``.
    max_wait:
        Seconds a queued request may age before its bucket is flushed as a
        partial batch — the latency/packing trade-off knob.
    workers:
        Engine worker threads; each owns a private
        :class:`~repro.backend.WorkBuffers` arena reused across batches.
    max_pending:
        Backpressure bound on requests in flight (queued + running).
        :meth:`submit` suspends the caller while the service is at the
        bound; :meth:`submit_nowait` sheds lower-priority queued work
        first and raises :class:`~repro.errors.ServiceOverloadedError`
        only when nothing outranked is queued.
    retry_budget:
        Re-run attempts each request gets after batch failures.  A failed
        pack's live rows are re-run in halves (quarantine bisection), so
        an innocent rider co-batched with one poisoned request burns
        ``ceil(log2(max_batch))`` budget isolating it; the default covers
        that for ``max_batch=8``.  ``0`` disables retries (first failure
        rejects the whole pack, the pre-isolation behaviour).
    retry_backoff / retry_jitter_seed:
        Exponential-backoff base in seconds between retry waves
        (``base * 2^attempt``, with a seeded multiplicative jitter in
        ``[1, 2)``).  ``0`` retries immediately (tests).  The jitter RNG
        is seeded, so backoff schedules are reproducible.
    faults:
        Optional :class:`~repro.serve.faults.FaultPlan` (or ready
        :class:`~repro.serve.faults.FaultInjector`) — the deterministic
        chaos seam.  ``None`` (production) injects nothing.
    checkpoint_dir:
        When set, every completed batch's final engine state is written
        there as a numbered checkpoint
        (:mod:`repro.core.checkpoint` format) — the warm-start feed.
    backend / device / amortize:
        Engine construction knobs, shared by every batch.

    Use as an async context manager (``async with SolveService(...) as s:``)
    or call :meth:`start` / :meth:`drain` explicitly.  :meth:`drain` is the
    graceful shutdown path: stop accepting, flush queued requests as final
    (possibly partial) batches, wait for in-flight engine runs, then close
    every stream.
    """

    def __init__(
        self,
        *,
        max_batch: int = 8,
        max_wait: float = 0.05,
        workers: int = 1,
        max_pending: int = 256,
        retry_budget: int = 3,
        retry_backoff: float = 0.05,
        retry_jitter_seed: int = 0,
        faults: FaultPlan | FaultInjector | None = None,
        checkpoint_dir: str | Path | None = None,
        backend=None,
        device: DeviceSpec = TESLA_M2050,
        amortize: bool = True,
    ) -> None:
        if max_batch < 1:
            raise ACOConfigError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait < 0.0:
            raise ACOConfigError(f"max_wait must be >= 0, got {max_wait}")
        if workers < 1:
            raise ACOConfigError(f"workers must be >= 1, got {workers}")
        if max_pending < max_batch:
            raise ACOConfigError(
                f"max_pending ({max_pending}) must be >= max_batch ({max_batch})"
            )
        if retry_budget < 0:
            raise ACOConfigError(
                f"retry_budget must be >= 0, got {retry_budget}"
            )
        if retry_backoff < 0.0:
            raise ACOConfigError(
                f"retry_backoff must be >= 0, got {retry_backoff}"
            )
        self.max_batch = max_batch
        self.max_wait = max_wait
        self.workers = workers
        self.max_pending = max_pending
        self.retry_budget = retry_budget
        self.retry_backoff = retry_backoff
        # Loop-thread-only RNG: retry waves are scheduled from async code,
        # so a seeded generator makes backoff schedules reproducible.
        self._retry_rng = random.Random(retry_jitter_seed)  # guarded-by: loop
        self._faults = (
            FaultInjector(faults) if isinstance(faults, FaultPlan) else faults
        )
        self.checkpoint_dir = (
            None if checkpoint_dir is None else Path(checkpoint_dir)
        )
        if self.checkpoint_dir is not None:
            self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        # Consumed via next() from worker threads too — atomic in CPython,
        # so deliberately NOT loop-confined.
        self._batch_seq = itertools.count()
        self.device = device
        self.amortize = amortize
        self._backend = resolve_backend(backend)
        self.stats = ServiceStats()
        self._buckets: dict[BatchKey, deque[_Pending]] = {}  # guarded-by: loop
        self._inflight: set[asyncio.Task] = set()  # guarded-by: loop
        self._accepting = False  # guarded-by: loop
        self._closed = False  # guarded-by: loop
        self._loop: asyncio.AbstractEventLoop | None = None
        self._dispatcher: asyncio.Task | None = None  # guarded-by: loop
        self._wake: asyncio.Event | None = None
        self._slots: asyncio.Semaphore | None = None
        self._slots_taken = 0  # loop-thread mirror of acquired slots — guarded-by: loop
        self._executor: ThreadPoolExecutor | None = None
        self._last_batch_at: float | None = None  # guarded-by: loop
        self._tls = threading.local()

    # ---------------------------------------------------------------- lifecycle

    async def start(self) -> "SolveService":
        """Bind to the running loop and start accepting requests."""
        if self._closed:
            raise ServiceClosedError("service already drained; create a new one")
        if self._accepting:
            return self
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._slots = asyncio.Semaphore(self.max_pending)
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="aco-serve"
        )
        self._accepting = True
        self._dispatcher = asyncio.create_task(
            self._dispatch_loop(), name="aco-serve-dispatcher"
        )
        return self

    async def __aenter__(self) -> "SolveService":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.drain()

    async def drain(self) -> None:
        """Graceful shutdown: refuse new work, finish everything accepted.

        Queued requests are flushed immediately as final (possibly
        undersized) batches, in-flight engine runs complete, every stream
        is terminated, then the worker pool shuts down.  Idempotent.
        """
        if self._closed:
            return
        self._accepting = False
        if self._loop is not None:
            self._flush_all()
            while self._inflight:
                await asyncio.gather(*list(self._inflight), return_exceptions=True)
            if self._dispatcher is not None:
                self._dispatcher.cancel()
                try:
                    await self._dispatcher
                except asyncio.CancelledError:
                    pass
                self._dispatcher = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self._closed = True

    @property
    def accepting(self) -> bool:
        return self._accepting

    @property
    def pending(self) -> int:
        """Requests queued in buckets (not yet launched)."""
        return sum(len(q) for q in self._buckets.values())

    def health(self) -> dict:
        """Liveness snapshot (the ``{"op": "health"}`` wire payload).

        Queue depths per bucket, in-flight batch count, capacity
        occupancy, worker-thread liveness, and the age of the last batch
        to finish — the numbers an external prober needs to distinguish
        "busy", "wedged" and "idle".
        """
        threads = (
            getattr(self._executor, "_threads", ())
            if self._executor is not None
            else ()
        )
        # ThreadPoolExecutor spawns threads lazily; before the first batch
        # an idle pool has none, which is healthy, not dead.  Dead means
        # "spawned but no longer alive".
        alive = (
            sum(1 for t in threads if t.is_alive())
            if threads
            else (self.workers if self._executor is not None else 0)
        )
        last = self._last_batch_at
        return {
            "source": "service",
            "accepting": self._accepting,
            "queued": self.pending,
            "queue_depths": {
                str(k): len(q) for k, q in sorted(
                    self._buckets.items(), key=lambda kv: str(kv[0])
                )
            },
            "inflight_batches": len(self._inflight),
            "slots_taken": self._slots_taken,
            "max_pending": self.max_pending,
            "workers": self.workers,
            "workers_alive": alive,
            "last_batch_age_seconds": (
                None if last is None else round(time.monotonic() - last, 6)
            ),
        }

    # --------------------------------------------------------------- submission

    def _make_pending(self, request: SolveRequest) -> SolveHandle:
        assert self._loop is not None
        handle = SolveHandle(request, self._loop)
        pending = _Pending(
            request, handle, time.monotonic(), retry_budget=self.retry_budget
        )
        key = request.bucket_key
        bucket = self._buckets.setdefault(key, deque())
        bucket.append(pending)
        self.stats.observe_submitted()
        if len(bucket) >= self.max_batch:
            # Launch-on-full keeps packing deterministic and latency minimal:
            # the request that fills a bucket dispatches it synchronously.
            self._launch(
                key,
                [bucket.popleft() for _ in range(self.max_batch)],
                cause="full",
            )
            if not bucket:
                del self._buckets[key]
        else:
            assert self._wake is not None
            self._wake.set()  # dispatcher recomputes its flush timeout
        return handle

    async def submit(self, request: SolveRequest) -> SolveHandle:
        """Queue a request, suspending under backpressure.

        Suspends while ``max_pending`` requests are in flight (the
        backpressure path), raises
        :class:`~repro.errors.ServiceClosedError` once draining has begun.
        """
        if not self._accepting:
            raise ServiceClosedError("service is not accepting requests")
        assert self._slots is not None
        await self._slots.acquire()
        if not self._accepting:
            # Drain began while we waited for capacity.
            self._slots.release()
            raise ServiceClosedError("service drained while awaiting capacity")
        self._slots_taken += 1
        return self._make_pending(request)

    def _try_acquire_slot(self) -> bool:
        """Acquire one capacity slot without suspending; False when full."""
        assert self._slots is not None
        # Semaphore.acquire completes synchronously when a slot is free;
        # drive the coroutine one step instead of suspending the caller.
        coro = self._slots.acquire()
        acquired = False
        try:
            coro.send(None)
        except StopIteration:
            acquired = True
        finally:
            if not acquired:
                coro.close()
        if acquired:
            self._slots_taken += 1
        return acquired

    def _shed_below(self, priority: int) -> bool:
        """Evict one queued request ranking strictly below ``priority``.

        Policy: shed the *lowest*-priority bucket work first; among equals,
        the youngest (it has invested the least queue time).  Only queued
        (unlaunched) requests are sheddable — rows already packed into a
        running batch are never revoked.  The victim fails with
        :class:`~repro.errors.ServiceOverloadedError`, is counted as
        outcome ``"shed"``, and frees its capacity slot.
        """
        victim: _Pending | None = None
        victim_key: BatchKey | None = None
        for key, bucket in self._buckets.items():
            for p in bucket:
                if p.request.priority >= priority:
                    continue
                if victim is None or (
                    p.request.priority,
                    -p.submitted_at,
                ) < (victim.request.priority, -victim.submitted_at):
                    victim = p
                    victim_key = key
        if victim is None:
            return False
        assert victim_key is not None
        bucket = self._buckets[victim_key]
        bucket.remove(victim)
        if not bucket:
            del self._buckets[victim_key]
        victim.resolved = True
        self.stats.observe_resolution(
            "shed", time.monotonic() - victim.submitted_at
        )
        victim.handle._reject(
            ServiceOverloadedError(
                f"request shed under load (priority {victim.request.priority})"
            )
        )
        assert self._slots is not None
        self._slots.release()
        self._slots_taken -= 1
        return True

    def submit_nowait(self, request: SolveRequest) -> SolveHandle:
        """Like :meth:`submit` but never waits: at the ``max_pending``
        bound it frees capacity by shedding one queued request of
        strictly lower priority (outcome ``"shed"``), and raises
        :class:`~repro.errors.ServiceOverloadedError` only when nothing
        outranked is queued."""
        if not self._accepting:
            raise ServiceClosedError("service is not accepting requests")
        assert self._slots is not None
        acquired = self._try_acquire_slot()
        if not acquired and self._shed_below(request.priority):
            acquired = self._try_acquire_slot()
        if not acquired:
            raise ServiceOverloadedError(
                f"service at capacity ({self.max_pending} requests in flight)"
            )
        return self._make_pending(request)

    # --------------------------------------------------------------- dispatcher

    async def _dispatch_loop(self) -> None:
        """Flush buckets whose oldest request has aged past ``max_wait``."""
        assert self._wake is not None
        while True:
            self._wake.clear()
            next_due = self._flush_due()
            timeout = None
            if next_due is not None:
                timeout = max(next_due - time.monotonic(), 0.0)
            try:
                await asyncio.wait_for(self._wake.wait(), timeout)
            except asyncio.TimeoutError:
                pass

    def _flush_due(self) -> float | None:
        """Launch every overdue bucket; return the next flush deadline."""
        now = time.monotonic()
        next_due: float | None = None
        # Emptied buckets are deleted (not kept as dead deques): under
        # diverse traffic the dict would otherwise grow with every BatchKey
        # ever seen and each pass here would scan all of them.
        for key, bucket in list(self._buckets.items()):
            while bucket and bucket[0].submitted_at + self.max_wait <= now:
                pack = [
                    bucket.popleft()
                    for _ in range(min(len(bucket), self.max_batch))
                ]
                self._launch(key, pack, cause="max_wait")
            if bucket:
                due = bucket[0].submitted_at + self.max_wait
                next_due = due if next_due is None else min(next_due, due)
            else:
                del self._buckets[key]
        return next_due

    def _flush_all(self) -> None:
        """Launch every queued request immediately (the drain path)."""
        for key, bucket in list(self._buckets.items()):
            while bucket:
                pack = [
                    bucket.popleft()
                    for _ in range(min(len(bucket), self.max_batch))
                ]
                self._launch(key, pack, cause="drain")
            del self._buckets[key]

    def _launch(
        self, key: BatchKey, pack: list[_Pending], *, cause: str
    ) -> None:
        now = time.monotonic()
        self.stats.observe_flush(
            key, cause, [now - p.submitted_at for p in pack]
        )
        task = asyncio.create_task(
            self._run_and_resolve(key, pack), name=f"aco-serve-batch-{key.n}"
        )
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    # ------------------------------------------------------------------ workers

    async def _run_and_resolve(self, key: BatchKey, pack: list[_Pending]) -> None:
        """Drive one launched pack to resolution, slots released exactly once.

        All execution (including quarantine bisection and retries) happens
        inside :meth:`_execute_pack`; this wrapper owns the capacity slots
        so recursion cannot double-release them.
        """
        try:
            await self._execute_pack(key, pack, attempt=0)
        finally:
            assert self._slots is not None and self._wake is not None
            for _ in pack:
                self._slots.release()
            self._slots_taken -= len(pack)
            self._wake.set()

    def _reject_pending(
        self, p: _Pending, exc: ServeError, outcome: str, now: float
    ) -> None:
        p.resolved = True
        self.stats.observe_resolution(outcome, now - p.submitted_at)
        p.handle._reject(exc)

    def _drop_timed_out(self, pack: list[_Pending]) -> list[_Pending]:
        """Fail rows whose hard timeout passed; return the still-live rows.

        Timeouts are enforced lazily at scheduling points (launch and
        retry time here, report boundaries inside the run), so a row that
        timed out while queued behind a failure never burns engine time.
        """
        now = time.monotonic()
        live: list[_Pending] = []
        for p in pack:
            if p.resolved:
                continue
            if p.timeout_at is not None and now >= p.timeout_at:
                self._reject_pending(
                    p,
                    ServeTimeoutError(
                        f"request timed out after {p.request.timeout}s"
                    ),
                    "timeout",
                    now,
                )
            else:
                live.append(p)
        return live

    async def _execute_pack(
        self, key: BatchKey, pack: list[_Pending], attempt: int
    ) -> None:
        """Run a pack; on failure, quarantine-and-retry by bisection.

        A failed batch rejects nobody outright (beyond exhausted retry
        budgets): its live rows are re-run in halves, recursively, so a
        single poisoned request is isolated into ever-smaller packs until
        it fails alone — while every innocent co-batched rider lands in a
        poison-free half and completes with its solo-identical result.
        Backoff between waves is exponential with seeded jitter; budgets
        strictly decrease per wave, so recursion terminates.
        """
        assert self._loop is not None and self._executor is not None
        runnable = self._drop_timed_out(pack)
        if not runnable:
            return
        try:
            batch = await self._loop.run_in_executor(
                self._executor, self._run_batch_sync, key, runnable
            )
        except asyncio.CancelledError:
            raise
        except BaseException as exc:  # incl. worker death: never hang riders
            await self._quarantine_and_retry(key, runnable, attempt, exc)
        else:
            self.stats.observe_batch(key, batch)
            now = self._last_batch_at = time.monotonic()
            for p, row in zip(runnable, batch.results):
                if not p.resolved:
                    p.resolved = True
                    self.stats.observe_resolution(
                        "completed", now - p.submitted_at
                    )
                    p.handle._resolve(row)

    async def _quarantine_and_retry(
        self,
        key: BatchKey,
        pack: list[_Pending],
        attempt: int,
        exc: BaseException,
    ) -> None:
        """One failure wave: charge budgets, reject the exhausted, re-run
        the rest in halves after a jittered exponential backoff."""
        self._last_batch_at = time.monotonic()
        wrapped = ServeError(f"batch execution failed: {exc!r}")
        wrapped.__cause__ = exc
        now = time.monotonic()
        retryable: list[_Pending] = []
        for p in pack:
            # Early-resolved riders already hold their snapshot result and
            # were counted at their resolving boundary (worker thread).
            if p.resolved:
                continue
            p.retries_left -= 1
            if p.retries_left < 0:
                self._reject_pending(p, wrapped, "failed", now)
            else:
                retryable.append(p)
        if not retryable:
            return
        self.stats.observe_retry(len(retryable))
        if self.retry_backoff > 0.0:
            delay = (
                self.retry_backoff
                * (2**attempt)
                * (1.0 + self._retry_rng.random())
            )
            await asyncio.sleep(delay)
        if len(retryable) == 1:
            await self._execute_pack(key, retryable, attempt + 1)
            return
        # Bisection: a poisoned row drags at most half the pack into the
        # next failure; log2(max_batch) waves isolate it completely.
        self.stats.observe_bisection()
        mid = len(retryable) // 2
        await asyncio.gather(
            self._execute_pack(key, retryable[:mid], attempt + 1),
            self._execute_pack(key, retryable[mid:], attempt + 1),
        )

    def _worker_arena(self) -> WorkBuffers:
        """The calling worker thread's private scratch arena (one per
        worker, reused across batches — the cross-engine amortisation
        seam)."""
        # lint: worker-thread
        work = getattr(self._tls, "work", None)
        if work is None:
            work = WorkBuffers(self._backend)
            self._tls.work = work
        return work

    def _run_batch_sync(self, key: BatchKey, pack: list[_Pending]) -> BatchRunResult:
        """Engine run on a worker thread: build, stream boundaries, return.

        Per-boundary duties (all through ``call_soon_threadsafe``): push a
        :class:`SolveUpdate` to every live rider, resolve riders whose
        target length is met or whose deadline expired, fail riders whose
        hard timeout passed, and stop the batch early once every rider
        has resolved.  When a fault injector is installed, its scheduled
        faults fire here — batch start and report boundaries — exactly
        where real worker failures originate.
        """
        # lint: worker-thread
        injector = self._faults
        ordinal = -1
        if injector is not None:
            ordinal = injector.start_batch(
                [p.request.instance.name for p in pack]
            )
        engine = BatchEngine(
            [p.request.instance for p in pack],
            [p.request.params for p in pack],
            device=self.device,
            construction=key.construction,
            pheromone=key.pheromone,
            backend=self._backend,
            amortize=self.amortize,
            work=self._worker_arena() if self.amortize else None,
            variant=key.variant,
            local_search=key.local_search,
            local_search_options=(
                {"passes": key.ls_passes, "target": key.ls_target}
                if key.local_search != "none"
                else None
            ),
        )
        loop = self._loop
        assert loop is not None
        run_start = time.monotonic()
        boundary_index = 0

        def on_boundary(update: BoundaryUpdate) -> bool:
            nonlocal boundary_index
            if injector is not None:
                injector.on_boundary(ordinal, boundary_index)
            boundary_index += 1
            now = time.monotonic()
            all_resolved = True
            for b, p in enumerate(pack):
                if p.resolved:
                    continue
                if p.timeout_at is not None and now >= p.timeout_at:
                    # Hard timeout: fail the rider mid-run (the batch keeps
                    # going for the others).  ServiceStats locks internally,
                    # so worker-thread mutation cannot tear.
                    p.resolved = True
                    self.stats.observe_resolution(
                        "timeout", now - p.submitted_at
                    )
                    loop.call_soon_threadsafe(
                        p.handle._reject,
                        ServeTimeoutError(
                            f"request timed out after {p.request.timeout}s"
                        ),
                    )
                    continue
                best = int(update.best_lengths[b])
                loop.call_soon_threadsafe(
                    p.handle._push_update,
                    SolveUpdate(iteration=update.iteration, best_length=best),
                )
                hit_target = (
                    p.request.target_length is not None
                    and best <= p.request.target_length
                )
                expired = p.deadline_at is not None and now >= p.deadline_at
                if hit_target or expired:
                    # Early resolution: best-so-far snapshot.  No iteration
                    # traces (they live batch-side until the run ends);
                    # wall_seconds is the true batch wall at this boundary.
                    row = RunResult(
                        best_tour=update.best_tours[b].copy(),
                        best_length=best,
                        iteration_best_lengths=[],
                        reports=[],
                        wall_seconds=now - run_start,
                        device=self.device,
                    )
                    p.resolved = True
                    p.early = "target" if hit_target else "deadline"
                    self.stats.observe_resolution(p.early, now - p.submitted_at)
                    loop.call_soon_threadsafe(p.handle._resolve, row)
                else:
                    all_resolved = False
            return all_resolved

        batch = engine.run(
            key.iterations, report_every=key.report_every, on_boundary=on_boundary
        )
        if self.checkpoint_dir is not None:
            self._write_batch_checkpoint(engine, key)
        return batch

    def _write_batch_checkpoint(self, engine: BatchEngine, key: BatchKey) -> None:
        """Persist the finished batch's engine state (worker thread).

        One numbered file per batch under ``checkpoint_dir`` — the
        pheromone warm-start feed.  Failures here must not fail the batch
        (results are already computed); they surface as a failed-write
        counter in the registry instead.
        """
        from repro.core.checkpoint import save_checkpoint
        from repro.errors import CheckpointError

        # lint: worker-thread
        seq = next(self._batch_seq)
        path = self.checkpoint_dir / f"batch-{seq:06d}-n{key.n}.npz"
        try:
            save_checkpoint(engine, path)
        except CheckpointError:
            self.stats.registry.inc("serve.checkpoint_write_failures")
        else:
            self.stats.observe_checkpoint()
