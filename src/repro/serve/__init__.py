"""Async micro-batching solve service over the batched engine.

The ROADMAP's "async serving" layer: queue concurrent
:class:`~repro.serve.service.SolveRequest` jobs, pack equal-geometry
requests into shared :class:`~repro.core.batch.BatchEngine` batches, stream
per-boundary best-so-far updates to each caller, and resolve finals that are
bit-identical to solo runs.  See :mod:`repro.serve.service` for the
architecture, :mod:`repro.serve.client` for in-process use and
:mod:`repro.serve.protocol` for the JSON-lines TCP front-end behind
``gpu-aco serve``.
"""

from __future__ import annotations

from repro.serve.client import AsyncSolveClient
from repro.serve.faults import FaultInjector, FaultPlan, malformed_wire_lines
from repro.serve.protocol import (
    health_over_tcp,
    request_over_tcp,
    serve_tcp,
    stats_over_tcp,
)
from repro.serve.service import (
    BatchKey,
    ServiceStats,
    SolveHandle,
    SolveRequest,
    SolveService,
    SolveUpdate,
)

__all__ = [
    "AsyncSolveClient",
    "BatchKey",
    "FaultInjector",
    "FaultPlan",
    "ServiceStats",
    "SolveHandle",
    "SolveRequest",
    "SolveService",
    "SolveUpdate",
    "health_over_tcp",
    "malformed_wire_lines",
    "request_over_tcp",
    "serve_tcp",
    "stats_over_tcp",
]
