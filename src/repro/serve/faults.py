"""Deterministic fault injection for the solve service (chaos seam).

Chaos tests are only trustworthy when they are reproducible: a fault that
fires "sometimes" produces a suite that flakes instead of a suite that
pins behaviour.  This module injects failures on an explicit, seeded
schedule — a :class:`FaultPlan` says *which* batch ordinals fail, run
slow, or die, and *which* instances are poisoned; a :class:`FaultInjector`
executes that plan from the service's worker threads.

Two scheduling families, chosen for determinism under retries:

* **By batch ordinal** (``fail_batches``, ``slow_batches``,
  ``kill_batches``, ``fail_boundaries``): the injector counts every batch
  the service launches (retries included) under a lock, so "the third
  batch fails" means the same batch in every run with the same traffic.
  Ordinal faults are *transient* — the retried batch gets a fresh ordinal
  and (unless also scheduled) succeeds — modelling flaky workers.
* **By instance name** (``poison_instances``): every batch containing a
  poisoned instance fails, regardless of ordinal.  Poison is
  *persistent* and schedule-free, so it stays deterministic as the
  quarantine bisection reorders and re-runs sub-batches — the bisection
  provably isolates the poisoned row while every co-batched rider
  completes.

Faults surface as :class:`~repro.errors.InjectedFaultError` (a normal
:class:`~repro.errors.ServeError`) except worker death, which raises
:class:`~repro.errors.WorkerKilledError` — a ``BaseException``, because
real worker death does not flow through ``except Exception`` recovery;
only the service's outermost failure barrier may catch it.

:func:`malformed_wire_lines` generates the deterministic garbage-line
corpus (oversized, non-UTF-8, broken JSON, non-object JSON) the wire
chaos tests replay against a live server.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.errors import InjectedFaultError, WorkerKilledError

__all__ = ["FaultInjector", "FaultPlan", "malformed_wire_lines"]


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible fault schedule (see the module docstring).

    Attributes
    ----------
    seed:
        Identity tag for logs and the malformed-line corpus; the schedule
        itself is explicit, not derived.
    fail_batches:
        Batch ordinals (0-based launch order, retries included) that raise
        :class:`~repro.errors.InjectedFaultError` before running.
    slow_batches:
        Ordinal -> extra seconds of sleep injected before the batch runs.
    kill_batches:
        Ordinals that raise :class:`~repro.errors.WorkerKilledError`
        (simulated worker death, a ``BaseException``).
    fail_boundaries:
        Ordinal -> report-boundary index (0-based) at which the batch
        raises mid-run — state built up before the failure is lost,
        exactly like a real mid-run crash.
    poison_instances:
        Instance names whose presence always fails the batch.
    kill_workers:
        Router-level schedule (ignored by :class:`FaultInjector`): 0-based
        *routed-request* ordinals after whose forwarding the shard router
        SIGKILLs the worker **process** that request was routed to — real
        OS-level death, not the simulated in-thread
        :class:`~repro.errors.WorkerKilledError` of ``kill_batches``.
        Deterministic because the router assigns routing ordinals in
        arrival order; the failover tests drive shard death with this.
    """

    seed: int = 0
    fail_batches: tuple[int, ...] = ()
    slow_batches: dict[int, float] = field(default_factory=dict)
    kill_batches: tuple[int, ...] = ()
    fail_boundaries: dict[int, int] = field(default_factory=dict)
    poison_instances: tuple[str, ...] = ()
    kill_workers: tuple[int, ...] = ()


class FaultInjector:
    """Executes a :class:`FaultPlan` from service worker threads.

    Batch ordinals are assigned under a lock in launch order, so a plan
    addresses "the N-th batch this service ever ran" deterministically
    even with several worker threads.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._lock = threading.Lock()
        self._next = 0

    @property
    def batches_started(self) -> int:
        with self._lock:
            return self._next

    def start_batch(self, instance_names: list[str]) -> int:
        """Claim the next ordinal and fire any batch-start faults.

        Called by the worker before it builds the engine; returns the
        ordinal for subsequent :meth:`on_boundary` checks.
        """
        with self._lock:
            ordinal = self._next
            self._next += 1
        plan = self.plan
        delay = plan.slow_batches.get(ordinal)
        if delay:
            time.sleep(delay)
        if ordinal in plan.kill_batches:
            raise WorkerKilledError(
                f"fault plan (seed {plan.seed}) killed the worker running "
                f"batch {ordinal}"
            )
        poisoned = [n for n in instance_names if n in plan.poison_instances]
        if poisoned:
            raise InjectedFaultError(
                f"fault plan (seed {plan.seed}) poisoned instance(s) "
                f"{sorted(set(poisoned))} in batch {ordinal}"
            )
        if ordinal in plan.fail_batches:
            raise InjectedFaultError(
                f"fault plan (seed {plan.seed}) failed batch {ordinal} at start"
            )
        return ordinal

    def on_boundary(self, ordinal: int, boundary_index: int) -> None:
        """Fire a scheduled mid-run failure at a report boundary."""
        if self.plan.fail_boundaries.get(ordinal) == boundary_index:
            raise InjectedFaultError(
                f"fault plan (seed {self.plan.seed}) failed batch {ordinal} "
                f"at boundary {boundary_index}"
            )


def malformed_wire_lines(
    *, seed: int = 0, oversized_bytes: int = 1 << 20
) -> list[bytes]:
    """The deterministic garbage corpus for wire chaos tests.

    Every entry is one ``\\n``-terminated line a hardened server must
    answer with a structured ``error`` line — without dropping the
    connection or buffering without bound.
    """
    chunk = b"x" * 64 + str(seed).encode("ascii")
    filler = chunk * (oversized_bytes // len(chunk) + 1)
    return [
        b'{"oversized": "' + filler + b'"}\n',  # exceeds the line cap
        b"\xff\xfe not utf-8 \x80\x81\n",  # undecodable bytes
        b'{"broken": \n',  # truncated JSON
        b'["not", "an", "object"]\n',  # JSON, but not an object
        b"plain text, not json at all\n",
    ]
