"""Sequential baseline: a Python port of the AS parts of Stützle's ACOTSP.

The paper compares every GPU kernel against "the sequential code, written in
ANSI C, provided by Stützle" (the ACOTSP package accompanying Dorigo &
Stützle's book).  This subpackage reproduces the algorithmically relevant
parts of that code:

* per-iteration ``choice_info`` computation (``tau^alpha * eta^beta``),
* tour construction with the **nearest-neighbour candidate list** decision
  rule (roulette over the nn unvisited candidates, falling back to the best
  ``choice_info`` city when the list is exhausted) — the comparator for
  Figure 4(a),
* tour construction with the **fully probabilistic** decision rule (roulette
  over all unvisited cities) — the comparator for Figure 4(b),
* the pheromone update (evaporate all edges, deposit ``1/C_k`` per ant edge,
  symmetric) — the comparator for Figure 5,

together with an instrumented operation ledger (:class:`repro.seq.counts.CpuOps`)
and a linear CPU cost model (:mod:`repro.seq.cost`) used by the experiment
harness's model mode.
"""

from __future__ import annotations

from repro.seq.counts import CpuOps
from repro.seq.cost import CpuCostParams, estimate_cpu_time
from repro.seq.engine import IterationResult, SequentialAntSystem

__all__ = [
    "SequentialAntSystem",
    "IterationResult",
    "CpuOps",
    "CpuCostParams",
    "estimate_cpu_time",
]
