"""Operation ledger for the sequential (CPU) baseline.

The sequential engine accumulates what the equivalent C program would
execute, in five classes that dominate ACOTSP's profile.  The experiment
harness's model mode converts a ledger into seconds with the linear model in
:mod:`repro.seq.cost`; tests cross-check the ledgers against closed forms.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, fields

__all__ = ["CpuOps"]


@dataclass
class CpuOps:
    """Work executed by the sequential baseline.

    Attributes
    ----------
    arith_ops:
        Ordinary arithmetic/logic ops (add, mul, compare).
    mem_seq_refs:
        Streaming references: sequential row scans of choice_info, the
        evaporation sweep — prefetch-friendly, mostly cache hits.
    mem_rand_refs:
        Scattered references: candidate-list gathers, tabu flag pokes, the
        symmetric deposit's random read-modify-writes — the cache-miss
        carriers.
    rng_samples:
        Uniform random numbers drawn (Park-Miller ``ran01``).
    pow_calls:
        ``pow()`` libm calls (choice-info recomputation).
    branch_ops:
        Data-dependent branches (tabu checks, roulette walk exits).
    fallback_steps:
        Construction steps where the candidate list was exhausted and the
        rule fell back to a full best-next scan (stochastic; measured).
    """

    arith_ops: float = 0.0
    mem_seq_refs: float = 0.0
    mem_rand_refs: float = 0.0
    rng_samples: float = 0.0
    pow_calls: float = 0.0
    branch_ops: float = 0.0
    fallback_steps: float = 0.0

    def merge(self, other: "CpuOps") -> "CpuOps":
        """In-place accumulate another ledger."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def __add__(self, other: "CpuOps") -> "CpuOps":
        out = dataclasses.replace(self)
        return out.merge(other)

    def scaled(self, factor: float) -> "CpuOps":
        """A copy with every counter multiplied by ``factor``."""
        if factor < 0:
            raise ValueError(f"scale factor must be non-negative, got {factor}")
        out = dataclasses.replace(self)
        for f in fields(out):
            setattr(out, f.name, getattr(out, f.name) * factor)
        return out

    def as_dict(self) -> dict[str, float]:
        return {f.name: float(getattr(self, f.name)) for f in fields(self)}

    def approx_equal(self, other: "CpuOps", *, rtol: float = 1e-9) -> bool:
        for f in fields(self):
            a, b = float(getattr(self, f.name)), float(getattr(other, f.name))
            if abs(a - b) > rtol * max(1.0, abs(a), abs(b)):
                return False
        return True
