"""The sequential Ant System engine (ACOTSP port, instrumented).

Algorithmically this follows Dorigo & Stützle's reference implementation:

* ants are placed on random starting cities,
* each construction step applies the *random proportional rule* (paper
  eq. 1) — restricted to the nearest-neighbour candidate list in
  ``mode="nnlist"`` with a best-``choice_info`` fallback once the list is
  exhausted, or over all unvisited cities in ``mode="full"``,
* after construction, pheromone evaporates by ``(1 - rho)`` everywhere
  (eq. 2) and every ant deposits ``1/C_k`` on its tour's edges, symmetrically
  (eqs. 3-4).

The implementation is vectorised **across ants** (all m ants advance one step
per inner iteration) — numerically identical to per-ant loops because ants
only interact between iterations, and orders of magnitude faster in numpy —
while the op ledger records what the equivalent scalar C program executes.

Closed-form predictors (``predict_*``) mirror the measured ledgers; the test
suite asserts they agree exactly, and the experiment harness uses them for
instance sizes where a functional run is unnecessary.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ACOConfigError
from repro.rng import ParkMillerLCG
from repro.seq.counts import CpuOps
from repro.tsp.instance import TSPInstance
from repro.tsp.tour import nearest_neighbor_tour, tour_length, tour_lengths

__all__ = [
    "SequentialAntSystem",
    "IterationResult",
    "predict_construction_ops_for",
    "predict_update_ops_for",
]


def predict_construction_ops_for(
    n: int, m: int, nn: int, mode: str, *, fallback_steps: float = 0.0
) -> CpuOps:
    """Closed-form ledger of one sequential construction pass.

    ``fallback_steps`` is the stochastic count of candidate-list exhaustions
    (only meaningful for ``mode="nnlist"``); inject a measured value or the
    model from :func:`repro.core.construction.expected_fallback_steps`.
    """
    if mode not in _MODES:
        raise ACOConfigError(f"mode must be one of {_MODES}, got {mode!r}")
    nf, mf = float(n), float(m)
    steps = nf - 1.0
    width = float(nn) if mode == "nnlist" else nf
    # Both rules touch cache-resident working sets per step: the full rule
    # streams whole choice rows; the nn rule gathers within one row (a few
    # KB) and pokes the ant's own tabu array — both classified streaming.
    # The genuinely cache-hostile CPU references live in the pheromone
    # deposit (see predict_update_ops_for).
    ops = CpuOps(
        arith_ops=mf + steps * (2.0 * mf * width + mf),
        mem_seq_refs=steps * 2.0 * mf * width,
        branch_ops=steps * mf * width,
        rng_samples=mf + steps * mf,
    )
    if mode == "nnlist" and fallback_steps:
        # the fallback scans the full choice row sequentially
        ops.fallback_steps = float(fallback_steps)
        ops.mem_seq_refs += 2.0 * fallback_steps * nf
        ops.arith_ops += fallback_steps * nf
        ops.branch_ops += fallback_steps * nf
    return ops


#: Last-level cache assumed for the sequential machine (a paper-era Xeon).
#: Drives the update's scattered-reference classification below.
CPU_LLC_BYTES: float = 4 * 1024 * 1024


def predict_update_ops_for(n: int, m: int) -> CpuOps:
    """Closed-form ledger of one sequential pheromone update.

    The deposit's read-modify-writes land at tour-dependent addresses all
    over the ``8 n^2``-byte pheromone matrix.  While the matrix fits the
    last-level cache these are cheap hits; once it outgrows the cache nearly
    every RMW misses.  The ledger splits the deposit refs between the
    streaming and scattered classes with miss probability
    ``min(1, 8 n^2 / LLC)`` — this is what makes the paper's Figure 5
    speed-up keep growing "linearly" through pr1002 instead of saturating.
    """
    nf, mf = float(n), float(m)
    n2 = nf * nf
    deposit_refs = mf * 4.0 * nf  # RMW both triangle cells per edge (2 refs each)
    miss_prob = min(1.0, 8.0 * n2 / CPU_LLC_BYTES)
    return CpuOps(
        # evaporation: one multiply per cell; deposit: 1/C_k + 2 adds/edge
        arith_ops=n2 + mf * (1.0 + 2.0 * nf),
        # evaporation sweeps the matrix sequentially; cached deposit refs
        # price like streaming hits.
        mem_seq_refs=2.0 * n2 + deposit_refs * (1.0 - miss_prob),
        mem_rand_refs=deposit_refs * miss_prob,
    )

_MODES = ("nnlist", "full")


@dataclass
class IterationResult:
    """Outcome of one sequential AS iteration."""

    tours: np.ndarray  # (m, n + 1) int32 closed tours
    lengths: np.ndarray  # (m,) int64 tour lengths
    ops: CpuOps  # work executed this iteration
    best_index: int  # index of the iteration-best ant

    @property
    def best_length(self) -> int:
        return int(self.lengths[self.best_index])


class SequentialAntSystem:
    """Instrumented sequential Ant System for the symmetric TSP.

    Parameters
    ----------
    instance:
        TSP instance.
    alpha, beta:
        Pheromone / heuristic exponents of the proportional rule.
    rho:
        Evaporation rate in (0, 1].
    n_ants:
        Colony size; the paper (following the book) uses ``m = n``.
    nn:
        Candidate-list width for ``mode="nnlist"`` (paper: 30).
    seed:
        Master seed for the Park-Miller streams.
    eta_shift:
        ACOTSP's ``1/(d + 0.1)`` heuristic regulariser.

    Examples
    --------
    >>> from repro.tsp import uniform_instance
    >>> inst = uniform_instance(30, seed=7)
    >>> ants = SequentialAntSystem(inst, seed=3)
    >>> res = ants.run_iteration(mode="nnlist")
    >>> res.tours.shape
    (30, 31)
    """

    def __init__(
        self,
        instance: TSPInstance,
        *,
        alpha: float = 1.0,
        beta: float = 2.0,
        rho: float = 0.5,
        n_ants: int | None = None,
        nn: int = 30,
        seed: int = 1,
        eta_shift: float = 0.1,
    ) -> None:
        if not 0.0 < rho <= 1.0:
            raise ACOConfigError(f"rho must lie in (0, 1], got {rho}")
        if alpha < 0 or beta < 0:
            raise ACOConfigError(f"alpha/beta must be >= 0, got {alpha}/{beta}")
        self.instance = instance
        self.n = instance.n
        self.m = int(n_ants) if n_ants is not None else self.n
        if self.m < 1:
            raise ACOConfigError(f"n_ants must be >= 1, got {self.m}")
        self.nn = min(int(nn), self.n - 1)
        if self.nn < 1:
            raise ACOConfigError(f"nn must be >= 1, got {nn}")
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.rho = float(rho)

        self.dist = instance.distance_matrix()
        self.eta = instance.heuristic_matrix(shift=eta_shift)
        self.nn_list = instance.nn_lists(self.nn)

        # tau0 = m / C_nn, ACOTSP's Ant System initialisation.
        c_nn = tour_length(nearest_neighbor_tour(self.dist), self.dist)
        self.tau0 = self.m / float(c_nn)
        self.pheromone = np.full((self.n, self.n), self.tau0, dtype=np.float64)
        np.fill_diagonal(self.pheromone, 0.0)

        self.rng = ParkMillerLCG(n_streams=self.m, seed=seed)
        self.best_tour: np.ndarray | None = None
        self.best_length: int | None = None
        self.iterations_run = 0

    # ------------------------------------------------------------ choice info

    def compute_choice_info(self, ops: CpuOps | None = None) -> np.ndarray:
        """``choice_info = tau^alpha * eta^beta`` (n x n), zero diagonal."""
        choice = np.power(self.pheromone, self.alpha) * np.power(self.eta, self.beta)
        np.fill_diagonal(choice, 0.0)
        if ops is not None:
            ops.merge(self.predict_choice_ops(self.n))
        return choice

    @staticmethod
    def predict_choice_ops(n: int) -> CpuOps:
        """Closed-form ledger of the choice-info pass."""
        n2 = float(n) * n
        return CpuOps(
            arith_ops=n2,  # one multiply per cell
            mem_seq_refs=3.0 * n2,  # read tau, read eta, write choice
            pow_calls=2.0 * n2,
        )

    # ---------------------------------------------------------- construction

    def construct_tours(
        self, choice: np.ndarray, mode: str = "nnlist", ops: CpuOps | None = None
    ) -> np.ndarray:
        """Build one closed tour per ant under the selected decision rule.

        Returns ``(m, n + 1)`` ``int32`` closed tours.  When ``ops`` is given,
        the executed work is accumulated into it.
        """
        if mode not in _MODES:
            raise ACOConfigError(f"mode must be one of {_MODES}, got {mode!r}")
        n, m = self.n, self.m
        local = CpuOps()

        tours = np.empty((m, n + 1), dtype=np.int32)
        visited = np.zeros((m, n), dtype=bool)
        ant_idx = np.arange(m)

        # Random initial placement (ACOTSP: (long)(ran01 * n)).
        start = np.minimum((self.rng.uniform() * n).astype(np.int64), n - 1)
        local.rng_samples += m
        local.arith_ops += m
        tours[:, 0] = start
        visited[ant_idx, start] = True
        cur = start.astype(np.int64)

        for step in range(1, n):
            if mode == "nnlist":
                cur = self._step_nnlist(choice, cur, visited, tours, step, local)
            else:
                cur = self._step_full(choice, cur, visited, tours, step, local)

        tours[:, n] = tours[:, 0]
        if ops is not None:
            ops.merge(local)
        return tours

    @staticmethod
    def _roulette_pick(
        weights: np.ndarray, sums: np.ndarray, darts: np.ndarray
    ) -> np.ndarray:
        """Vectorised roulette: index per row of ``weights`` with mass ``sums``.

        Rows must have ``sums > 0``; ``darts`` are uniforms in [0, 1).  Uses
        the cumulative-sum + comparison idiom; the first index whose
        cumulative weight reaches the dart is selected, and that index always
        carries positive weight.
        """
        r = darts * sums
        cum = np.cumsum(weights, axis=1)
        idx = (cum < r[:, None]).sum(axis=1)
        return np.minimum(idx, weights.shape[1] - 1)

    def _step_nnlist(
        self,
        choice: np.ndarray,
        cur: np.ndarray,
        visited: np.ndarray,
        tours: np.ndarray,
        step: int,
        ops: CpuOps,
    ) -> np.ndarray:
        n, m, nn = self.n, self.m, self.nn
        ant_idx = np.arange(m)

        cand = self.nn_list[cur]  # (m, nn) candidate cities
        w = choice[cur[:, None], cand]  # gather choice values
        w = np.where(visited[ant_idx[:, None], cand], 0.0, w)
        sums = w.sum(axis=1)

        # Ledger: per ant — nn gathers of choice + nn tabu reads; nn masked
        # multiplies + nn accumulate adds; nn tabu branches; one dart.
        ops.mem_seq_refs += 2.0 * m * nn
        ops.arith_ops += 2.0 * m * nn + m
        ops.branch_ops += float(m) * nn
        ops.rng_samples += m

        # One dart per ant per step; fallback ants discard theirs.  Drawing
        # unconditionally keeps the ledger closed-form and the streams in
        # lock-step with the ledger.
        darts = self.rng.uniform()
        nxt = np.empty(m, dtype=np.int64)
        alive = sums > 0.0
        if np.any(alive):
            rows = np.nonzero(alive)[0]
            pick = self._roulette_pick(w[rows], sums[rows], darts[rows])
            nxt[rows] = cand[rows, pick]

        dead = np.nonzero(~alive)[0]
        if dead.size:
            # Candidate list exhausted: ACOTSP's choose_best_next over all
            # unvisited cities by choice_info value.
            sub = np.where(visited[dead], -np.inf, choice[cur[dead]])
            nxt[dead] = np.argmax(sub, axis=1)
            ops.fallback_steps += float(dead.size)
            ops.mem_seq_refs += 2.0 * dead.size * n
            ops.arith_ops += float(dead.size) * n
            ops.branch_ops += float(dead.size) * n

        visited[ant_idx, nxt] = True
        tours[:, step] = nxt
        return nxt

    def _step_full(
        self,
        choice: np.ndarray,
        cur: np.ndarray,
        visited: np.ndarray,
        tours: np.ndarray,
        step: int,
        ops: CpuOps,
    ) -> np.ndarray:
        n, m = self.n, self.m
        ant_idx = np.arange(m)

        w = np.where(visited, 0.0, choice[cur])  # (m, n)
        sums = w.sum(axis=1)
        # choice_info is strictly positive off-diagonal, so any unvisited city
        # keeps the row mass positive until the tour completes.
        darts = self.rng.uniform()
        nxt = self._roulette_pick(w, sums, darts)

        ops.mem_seq_refs += 2.0 * m * n
        ops.arith_ops += 2.0 * m * n + m
        ops.branch_ops += float(m) * n
        ops.rng_samples += m

        visited[ant_idx, nxt] = True
        tours[:, step] = nxt
        return nxt

    def predict_construction_ops(
        self, mode: str, *, fallback_steps: float = 0.0
    ) -> CpuOps:
        """Closed-form ledger of one construction pass (see module function
        :func:`predict_construction_ops_for`)."""
        return predict_construction_ops_for(
            self.n, self.m, self.nn, mode, fallback_steps=fallback_steps
        )

    # ------------------------------------------------------ pheromone update

    def update_pheromone(
        self, tours: np.ndarray, lengths: np.ndarray, ops: CpuOps | None = None
    ) -> None:
        """Evaporate then deposit, in place (paper eqs. 2-4, symmetric)."""
        self.pheromone *= 1.0 - self.rho

        frm = tours[:, :-1].astype(np.int64)
        to = tours[:, 1:].astype(np.int64)
        deltas = (1.0 / lengths.astype(np.float64))[:, None]
        deposit = np.broadcast_to(deltas, frm.shape).ravel()
        flat_fw = (frm * self.n + to).ravel()
        flat_bw = (to * self.n + frm).ravel()
        flat_tau = self.pheromone.reshape(-1)
        np.add.at(flat_tau, flat_fw, deposit)
        np.add.at(flat_tau, flat_bw, deposit)

        if ops is not None:
            ops.merge(self.predict_update_ops())

    def predict_update_ops(self) -> CpuOps:
        """Closed-form ledger of one pheromone update (see module function
        :func:`predict_update_ops_for`)."""
        return predict_update_ops_for(self.n, self.m)

    # -------------------------------------------------------------- iteration

    def run_iteration(self, mode: str = "nnlist") -> IterationResult:
        """One full AS iteration: choice info, construction, update."""
        ops = CpuOps()
        choice = self.compute_choice_info(ops)
        tours = self.construct_tours(choice, mode=mode, ops=ops)
        lengths = tour_lengths(tours, self.dist)
        self.update_pheromone(tours, lengths, ops)
        best = int(np.argmin(lengths))
        if self.best_length is None or lengths[best] < self.best_length:
            self.best_length = int(lengths[best])
            self.best_tour = tours[best].copy()
        self.iterations_run += 1
        return IterationResult(tours=tours, lengths=lengths, ops=ops, best_index=best)

    def run(self, iterations: int, mode: str = "nnlist") -> list[IterationResult]:
        """Run several iterations, returning their results in order."""
        if iterations < 1:
            raise ACOConfigError(f"iterations must be >= 1, got {iterations}")
        return [self.run_iteration(mode=mode) for _ in range(iterations)]
