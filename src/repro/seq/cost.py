"""Linear CPU cost model for the sequential baseline.

The harness's model mode needs sequential seconds for instances up to
pr2392, where actually running a Python port wall-clock would measure Python,
not the paper's ANSI-C program.  Instead the op ledger from the instrumented
engine (or its closed-form prediction) is priced with per-class nanosecond
constants::

    time = arith·c_a + mem·c_m + rng·c_r + pow·c_p + branch·c_b

The constants are calibrated once against the sequential times *implied* by
the paper (reported speed-up × reported GPU time; see
``repro.experiments.calibrate``) and recorded in
``repro.experiments.calibration``.  Defaults below are ballpark figures for a
~2008 Xeon-class core (the paper's era), so the model is sane even
uncalibrated.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.seq.counts import CpuOps

__all__ = ["CpuCostParams", "estimate_cpu_time"]


@dataclass(frozen=True)
class CpuCostParams:
    """Per-operation-class costs, in nanoseconds.

    Attributes
    ----------
    arith_ns:
        One ALU op (superscalar cores average well under 1 ns).
    mem_seq_ns:
        One streaming reference (sequential scans; mostly L1/L2 hits).
    mem_rand_ns:
        One scattered reference into the large arrays (candidate gathers,
        deposit read-modify-writes; heavy cache-miss blend).
    rng_ns:
        One ``ran01`` sample (integer divide chain).
    pow_ns:
        One libm ``pow`` call.
    branch_ns:
        One data-dependent branch (average over predicted/mispredicted).
    """

    arith_ns: float = 0.8
    mem_seq_ns: float = 1.0
    mem_rand_ns: float = 15.0
    rng_ns: float = 12.0
    pow_ns: float = 60.0
    branch_ns: float = 1.5

    def with_overrides(self, **kw: float) -> "CpuCostParams":
        """A copy with selected constants replaced (used by calibration)."""
        return replace(self, **kw)


def estimate_cpu_time(ops: CpuOps, params: CpuCostParams) -> float:
    """Seconds the paper-era sequential C code would need for ``ops``."""
    ns = (
        ops.arith_ops * params.arith_ns
        + ops.mem_seq_refs * params.mem_seq_ns
        + ops.mem_rand_refs * params.mem_rand_ns
        + ops.rng_samples * params.rng_ns
        + ops.pow_calls * params.pow_ns
        + ops.branch_ops * params.branch_ns
    )
    return float(ns) * 1e-9
