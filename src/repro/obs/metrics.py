"""Always-on metrics primitives: counters, gauges, reservoir histograms.

The paper's whole argument is a per-phase time breakdown (Tables II-IV);
this module is the substrate that breakdown — and every serve-tier signal
the scaling roadmap needs (queue waits, latency percentiles, flush causes)
— is published into.  Two design rules keep it safe on the hot path:

* **Bit-exactness.**  Metrics only *observe* wall-clock floats and integer
  counts; nothing here touches engine arrays or the engine RNG (the
  reservoir's sampling randomness is a private :mod:`random` stream), so
  instrumentation cannot perturb numerics.  The parity suites pin this.
* **True no-op when disabled.**  :class:`NullRegistry` hands out shared
  do-nothing metric objects and never stores a name, so a disabled path
  costs one attribute lookup and an empty method call.

Thread model: every metric object carries its own lock (registries are
shared between the asyncio loop thread and engine worker threads), and
:meth:`MetricsRegistry.snapshot` is consistent per metric.
"""

from __future__ import annotations

import random
import threading

from repro.util.timer import Timer

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "ReservoirHistogram",
]


class Counter:
    """Monotonically increasing integer counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._value = 0  # guarded-by: _lock
        self._lock = threading.Lock()

    def inc(self, delta: int = 1) -> None:
        if delta < 0:
            raise ValueError(f"counter increments must be >= 0, got {delta}")
        with self._lock:
            self._value += delta

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """Last-write-wins instantaneous value (e.g. queue depth)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._value = 0.0  # guarded-by: _lock
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += float(delta)

    @property
    def value(self) -> float:
        return self._value


class ReservoirHistogram:
    """Streaming distribution summary over an unbounded observation stream.

    Exact ``count``/``total``/``min``/``max`` plus percentile estimates
    from a fixed-size uniform reservoir (Vitter's algorithm R): the first
    ``max_samples`` observations are kept verbatim, after which each new
    observation replaces a random slot with probability
    ``max_samples / count`` — every observation ever seen is equally likely
    to be in the reservoir, so sorted-reservoir quantiles are unbiased
    estimates at O(1) memory.  The reservoir itself is a
    :class:`~repro.util.timer.Timer`, whose ``percentile`` rule this class
    therefore shares with plain lap timers.

    The replacement randomness is a private seeded :class:`random.Random`
    stream — deterministic per histogram, and entirely separate from the
    engine's RNG (instrumentation must never consume engine draws).
    """

    __slots__ = (
        "name", "max_samples", "_reservoir", "_count", "_total",
        "_min", "_max", "_rng", "_lock",
    )

    def __init__(
        self, name: str = "", max_samples: int = 512, seed: int = 0x5EED
    ) -> None:
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self.name = name
        self.max_samples = max_samples
        self._reservoir = Timer()  # guarded-by: _lock
        self._count = 0  # guarded-by: _lock
        self._total = 0.0  # guarded-by: _lock
        self._min: float | None = None  # guarded-by: _lock
        self._max: float | None = None  # guarded-by: _lock
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._total += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value
            laps = self._reservoir.laps
            if len(laps) < self.max_samples:
                laps.append(value)
            else:
                slot = self._rng.randrange(self._count)
                if slot < self.max_samples:
                    laps[slot] = value

    # ------------------------------------------------------------- summaries

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._total

    @property
    def mean(self) -> float:
        return self._total / self._count if self._count else 0.0

    @property
    def min(self) -> float:
        return self._min if self._min is not None else 0.0

    @property
    def max(self) -> float:
        return self._max if self._max is not None else 0.0

    def percentile(self, p: float) -> float:
        """Estimated ``p``-th percentile (exact while ``count`` is within
        the reservoir size)."""
        with self._lock:
            return self._reservoir.percentile(p)

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    def merge(self, other: "ReservoirHistogram") -> "ReservoirHistogram":
        """Fold ``other`` into this histogram (combining per-thread or
        per-shard instances); exact fields (``count``/``total``/``min``/
        ``max``) combine exactly, reservoirs concatenate and truncate to
        ``self.max_samples`` (slightly over-weighting whichever side
        sampled less — acceptable for merge use).  Aggregators that must
        keep every source sample (the shard router) are built with a
        ``max_samples`` large enough to hold the union.  Returns ``self``."""
        with other._lock:
            count, total = other._count, other._total
            omin, omax = other._min, other._max
            laps = list(other._reservoir.laps)
        with self._lock:
            self._count += count
            self._total += total
            if omin is not None and (self._min is None or omin < self._min):
                self._min = omin
            if omax is not None and (self._max is None or omax > self._max):
                self._max = omax
            self._reservoir.laps.extend(laps)
            del self._reservoir.laps[self.max_samples:]
        return self

    def snapshot(self) -> dict:
        """JSON-friendly summary with the standard percentile triple.

        ``samples`` carries the raw reservoir so a snapshot shipped over
        the wire round-trips through :meth:`from_snapshot` without losing
        the quantile substrate (full float precision — only the derived
        summary fields are rounded for display).
        """
        with self._lock:
            reservoir = self._reservoir
            return {
                "count": self._count,
                "total": round(self._total, 6),
                "mean": round(self.mean, 6),
                "min": round(self.min, 6),
                "max": round(self.max, 6),
                "p50": round(reservoir.percentile(50.0), 6),
                "p95": round(reservoir.percentile(95.0), 6),
                "p99": round(reservoir.percentile(99.0), 6),
                "samples": list(reservoir.laps),
            }

    @classmethod
    def from_snapshot(
        cls, snap: dict, *, name: str = "", max_samples: int | None = None
    ) -> "ReservoirHistogram":
        """Rebuild a histogram from a :meth:`snapshot` payload.

        The exact fields (``count``/``total``/``min``/``max``) and the
        reservoir come back verbatim; this is how the shard router folds
        per-worker histograms scraped off the ``{"op": "stats"}`` wire
        into one aggregate (``from_snapshot`` each side, then
        :meth:`merge`).  Snapshots predating the ``samples`` field
        reconstruct with an empty reservoir (summaries stay exact,
        quantiles degrade to 0).
        """
        samples = [float(v) for v in snap.get("samples", ())]
        if max_samples is None:
            max_samples = max(len(samples), 512)
        hist = cls(name=name, max_samples=max_samples)
        hist._count = int(snap["count"])
        hist._total = float(snap["total"])
        if hist._count:
            hist._min = float(snap["min"])
            hist._max = float(snap["max"])
        hist._reservoir.laps.extend(samples[:max_samples])
        return hist


class MetricsRegistry:
    """Named metric store: get-or-create counters, gauges and histograms.

    One registry per observed subsystem (an engine, a solve service); the
    ``snapshot()`` dict is the wire form the serve tier's ``{"op":
    "stats"}`` admin line returns.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}  # guarded-by: _lock
        self._gauges: dict[str, Gauge] = {}  # guarded-by: _lock
        self._histograms: dict[str, ReservoirHistogram] = {}  # guarded-by: _lock

    # -------------------------------------------------------- get-or-create

    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter(name)
            return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge(name)
            return metric

    def histogram(
        self, name: str, max_samples: int = 512
    ) -> ReservoirHistogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = ReservoirHistogram(
                    name, max_samples=max_samples
                )
            return metric

    # ---------------------------------------------------------- convenience

    def inc(self, name: str, delta: int = 1) -> None:
        self.counter(name).inc(delta)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def snapshot(self) -> dict:
        """All metrics as one JSON-friendly dict."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {n: c.value for n, c in sorted(counters.items())},
            "gauges": {n: g.value for n, g in sorted(gauges.items())},
            "histograms": {
                n: h.snapshot() for n, h in sorted(histograms.items())
            },
        }


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, delta: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass


class _NullHistogram(ReservoirHistogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


class NullRegistry(MetricsRegistry):
    """The disabled path: hands out shared do-nothing metrics, stores
    nothing, snapshots empty.  ``registry.enabled`` is the cheap gate for
    callers that want to skip building label strings entirely."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._null_counter = _NullCounter()
        self._null_gauge = _NullGauge()
        self._null_histogram = _NullHistogram()

    def counter(self, name: str) -> Counter:
        return self._null_counter

    def gauge(self, name: str) -> Gauge:
        return self._null_gauge

    def histogram(self, name: str, max_samples: int = 512) -> ReservoirHistogram:
        return self._null_histogram


#: Shared default no-op registry: the ``metrics=None`` resolution target.
NULL_REGISTRY = NullRegistry()
