"""Observability: metrics, engine phase accounting, and trace export.

The telemetry spine of the reproduction.  Three pieces:

* :class:`MetricsRegistry` — named counters, gauges and reservoir
  histograms (p50/p95/p99), cheap enough to be always-on;
  :class:`NullRegistry` (shared instance :data:`NULL_REGISTRY`) is the
  true no-op disabled path.
* :class:`PhaseClock` / :data:`PHASES` — per-phase wall-clock of the
  batch engine (construct / fold / local-search / update / host-sync),
  surfaced per ``report_every`` block and per run.
* :class:`TraceRecorder` — span sink exporting ``chrome://tracing``
  JSON timelines of whole runs.

Instrumentation is bit-exactness-preserving by construction: it only reads
``perf_counter`` and never touches engine arrays or the engine RNG; the
parity suites (``tests/property/test_obs_parity.py``) pin that.
"""

from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    MetricsRegistry,
    NullRegistry,
    ReservoirHistogram,
)
from repro.obs.phases import PHASES, PhaseClock
from repro.obs.trace import TraceRecorder, TraceSpan

__all__ = [
    "NULL_REGISTRY",
    "PHASES",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "NullRegistry",
    "PhaseClock",
    "ReservoirHistogram",
    "TraceRecorder",
    "TraceSpan",
]
