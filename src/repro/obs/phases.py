"""Engine phase accounting: where a batch iteration spends its wall-clock.

The paper's Tables II-IV split every iteration into tour construction and
pheromone update; the batched engine has five phases worth separating:

* ``construct`` — tour building (choice policy + construction family),
* ``fold`` — tour-length evaluation and the best-so-far fold,
* ``local-search`` — boundary-time 2-opt polish (zero when disabled),
* ``update`` — the variant's pheromone update,
* ``host-sync`` — boundary host transfer and report materialization.

:class:`PhaseClock` accumulates seconds per phase at three granularities at
once: run totals (always on — two float adds per phase per iteration),
per-``report_every``-block deltas (surfaced on
:class:`~repro.core.batch.BoundaryUpdate`), and optional per-span streams
into a :class:`~repro.obs.trace.TraceRecorder` and per-block histograms in
a :class:`~repro.obs.MetricsRegistry`.
"""

from __future__ import annotations

from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry

__all__ = ["PHASES", "PhaseClock"]

#: Engine phase names, in pipeline order.
PHASES = ("construct", "fold", "local-search", "update", "host-sync")


class PhaseClock:
    """Per-phase wall-clock accumulator for one engine.

    ``add(phase, start, end)`` takes raw ``perf_counter`` readings so the
    engine pays one subtraction and two dict adds per phase — cheap enough
    to be always-on.  When a tracer is attached every ``add`` also records
    a span (the chrome-trace export); when a real registry is attached,
    ``flush_block`` publishes each block's per-phase seconds as histogram
    observations under ``engine.phase.<name>``.
    """

    __slots__ = ("totals", "metrics", "tracer", "_block")

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        tracer=None,
    ) -> None:
        self.totals: dict[str, float] = {p: 0.0 for p in PHASES}
        self._block: dict[str, float] = {p: 0.0 for p in PHASES}
        self.metrics = NULL_REGISTRY if metrics is None else metrics
        self.tracer = tracer

    def add(
        self, phase: str, start: float, end: float, label: str | None = None
    ) -> None:
        """Attribute the ``[start, end]`` perf_counter interval to ``phase``."""
        duration = end - start
        self.totals[phase] += duration
        self._block[phase] += duration
        if self.tracer is not None:
            self.tracer.add_span(label or phase, start, duration, cat=phase)

    def flush_block(self) -> dict[str, float]:
        """Close the current ``report_every`` block: return its per-phase
        seconds (every phase keyed, zeros included), publish non-zero
        phases to the registry histograms, and reset the block."""
        deltas = dict(self._block)
        if self.metrics.enabled:
            for phase, seconds in deltas.items():
                if seconds > 0.0:
                    self.metrics.observe(f"engine.phase.{phase}", seconds)
        for phase in self._block:
            self._block[phase] = 0.0
        return deltas

    def mark(self) -> dict[str, float]:
        """Snapshot of the run totals (pair with :meth:`since`)."""
        return dict(self.totals)

    def since(self, mark: dict[str, float]) -> dict[str, float]:
        """Per-phase seconds accumulated since ``mark`` — the
        ``phase_breakdown`` a single ``run()`` call reports."""
        return {p: self.totals[p] - mark.get(p, 0.0) for p in PHASES}
