"""Chrome-trace span recording: whole runs as ``chrome://tracing`` timelines.

Skinderowicz's GPU-ACS/MMAS profiling localized the construction-vs-update
bottleneck with exactly this kind of timeline; :class:`TraceRecorder`
collects ``(name, start, duration)`` spans (perf_counter seconds) and
exports them in the Trace Event Format that ``chrome://tracing``,
Perfetto and ``speedscope`` all read: complete events (``"ph": "X"``) with
microsecond timestamps normalized to the first span.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass

__all__ = ["TraceRecorder", "TraceSpan"]


@dataclass(frozen=True)
class TraceSpan:
    """One completed span, in perf_counter seconds."""

    name: str
    start: float
    duration: float
    tid: int = 0
    cat: str = ""


class TraceRecorder:
    """Append-only span sink; thread-safe (engine workers may share one).

    ``tid`` groups spans into horizontal tracks in the viewer — callers
    that record from several engines/threads can pass a distinct track id
    per source; within one engine the phases are sequential, so a single
    track renders as the classic per-iteration ribbon.
    """

    def __init__(self) -> None:
        self.spans: list[TraceSpan] = []
        self._lock = threading.Lock()

    def add_span(
        self,
        name: str,
        start: float,
        duration: float,
        *,
        tid: int = 0,
        cat: str = "",
    ) -> None:
        span = TraceSpan(name=name, start=start, duration=max(duration, 0.0),
                         tid=tid, cat=cat)
        with self._lock:
            self.spans.append(span)

    def __len__(self) -> int:
        return len(self.spans)

    def to_chrome_trace(self) -> dict:
        """The Trace Event Format payload (JSON Object Format, so a
        ``displayTimeUnit`` can ride along)."""
        with self._lock:
            spans = list(self.spans)
        t0 = min((s.start for s in spans), default=0.0)
        events = [
            {
                "name": s.name,
                "cat": s.cat or "span",
                "ph": "X",
                "ts": round((s.start - t0) * 1e6, 3),
                "dur": round(s.duration * 1e6, 3),
                "pid": 0,
                "tid": s.tid,
            }
            for s in spans
        ]
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write(self, path) -> None:
        """Write the chrome-trace JSON to ``path`` (open the file in
        ``chrome://tracing`` / https://ui.perfetto.dev)."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_chrome_trace(), fh)
