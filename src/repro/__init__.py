"""GPU-ACO: reproduction of *Parallelization Strategies for Ant Colony
Optimisation on GPUs* (Cecilia, García, Ujaldón, Nisbet, Amos — IPDPS
Workshops 2011, arXiv:1101.2678).

The package implements the paper's full system on a SIMT functional/timing
simulator (no GPU required):

* :mod:`repro.tsp` — TSPLIB substrate (parser, distances, candidate lists,
  synthetic benchmark suite);
* :mod:`repro.rng` — device-function LCG and CURAND-style XORWOW generators;
* :mod:`repro.backend` — pluggable array backends (numpy host execution,
  optional CuPy GPU execution) behind one :class:`ArrayBackend` seam;
* :mod:`repro.simt` — the simulated GPUs (Tesla C1060 / M2050), memory and
  atomic models, occupancy, and the analytical cost model;
* :mod:`repro.seq` — the sequential ACOTSP baseline;
* :mod:`repro.core` — the GPU Ant System: 8 tour-construction kernels,
  5 pheromone-update kernels, the Choice kernel, and the colony;
* :mod:`repro.experiments` — harness regenerating every table and figure of
  the paper's evaluation.

Quickstart
----------
>>> from repro import AntSystem, load_instance
>>> colony = AntSystem(load_instance("att48"), construction=8, pheromone=1)
>>> result = colony.run(iterations=5)
>>> result.best_length > 0
True
"""

from __future__ import annotations

from repro.backend import ArrayBackend, available_backends, get_backend
from repro.core import (
    ACOParams,
    ACSParams,
    AntColonySystem,
    AntSystem,
    BatchEngine,
    BatchRunResult,
    MaxMinAntSystem,
    MMASParams,
    ChoiceKernel,
    RunResult,
    make_construction,
    make_pheromone,
)
from repro.simt import DEVICES, TESLA_C1060, TESLA_M2050, DeviceSpec
from repro.tsp import (
    TSPInstance,
    load_instance,
    parse_tsplib,
    paper_suite,
    uniform_instance,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ACOParams",
    "ArrayBackend",
    "available_backends",
    "get_backend",
    "ACSParams",
    "AntColonySystem",
    "AntSystem",
    "BatchEngine",
    "BatchRunResult",
    "MaxMinAntSystem",
    "MMASParams",
    "RunResult",
    "ChoiceKernel",
    "make_construction",
    "make_pheromone",
    "DeviceSpec",
    "TESLA_C1060",
    "TESLA_M2050",
    "DEVICES",
    "TSPInstance",
    "load_instance",
    "paper_suite",
    "parse_tsplib",
    "uniform_instance",
]
