"""Solution quality: I-Roulette (GPU) vs the exact proportional rule (CPU).

The paper's data-parallel selection is *not* the exact random proportional
rule — each thread draws its own random and a reduction picks the argmax of
``choice × U``.  The paper reports "the results are similar to those
obtained by the sequential code"; this example measures that claim: both
engines run side by side on the same instance and the best-so-far curves
are printed per iteration, with a greedy nearest-neighbour baseline.

With ``--replicas R`` the GPU side runs R seed-replicas through the batched
multi-colony engine (one vectorized batch, not R sequential runs) and the
curve reports the best across replicas — the statistically honest way to
compare a stochastic selection rule.

Run:  python examples/convergence_quality.py [--n 120] [--iterations 30]
      [--replicas 8]
"""

from __future__ import annotations

import argparse

from repro import ACOParams, BatchEngine
from repro.seq import SequentialAntSystem
from repro.tsp import clustered_instance
from repro.tsp.tour import nearest_neighbor_tour, tour_length
from repro.util.tables import Table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=120)
    parser.add_argument("--iterations", type=int, default=30)
    parser.add_argument("--seed", type=int, default=2024)
    parser.add_argument("--replicas", type=int, default=1)
    args = parser.parse_args()

    instance = clustered_instance(args.n, seed=args.seed, clusters=7)
    dist = instance.distance_matrix()
    greedy = tour_length(nearest_neighbor_tour(dist), dist)
    print(f"instance: {instance.name} (n={args.n}); greedy NN tour = {greedy}\n")

    gpu = BatchEngine.replicas(
        instance,
        ACOParams(seed=args.seed, nn=25),
        replicas=args.replicas,
        construction=8,
        pheromone=1,
    )
    seq = SequentialAntSystem(instance, seed=args.seed, nn=25)

    gpu_label = "GPU (I-Roulette) best" + (
        f" of {args.replicas} replicas" if args.replicas > 1 else ""
    )
    table = Table(
        ["iteration", gpu_label, "sequential (exact rule) best"],
        title="best-so-far tour length",
    )
    gpu_best = None
    seq_best = None
    for it in range(1, args.iterations + 1):
        gpu_reps = gpu.run_iteration()
        seq_res = seq.run_iteration(mode="nnlist")
        it_best = min(rep.best_length for rep in gpu_reps)
        gpu_best = min(gpu_best or it_best, it_best)
        seq_best = min(seq_best or seq_res.best_length, seq_res.best_length)
        if it <= 5 or it % 5 == 0:
            table.add_row([it, gpu_best, seq_best])
    print(table.render())

    gap = abs(gpu_best - seq_best) / seq_best * 100
    print(f"\nfinal gap between selection rules: {gap:.1f}%")
    print(f"both beat greedy NN by: GPU {100 * (greedy - gpu_best) / greedy:.1f}%, "
          f"sequential {100 * (greedy - seq_best) / greedy:.1f}%")


if __name__ == "__main__":
    main()
