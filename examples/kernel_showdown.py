"""Kernel showdown: all eight tour-construction strategies head to head.

Reproduces the *structure* of the paper's Table II on a medium instance:
every kernel version runs functionally (same seed), and the calibrated cost
model prices each one on both simulated devices.  Watch for the paper's two
headline effects:

* every refinement (choice kernel, device RNG, candidate lists, shared
  memory, texture) beats the baseline;
* the data-parallel kernels (7-8) dominate on small instances but lose to
  the best nn-list kernel on the biggest (run with ``--instance pr1002``
  in model-only mode to see the reversal).

Run:  python examples/kernel_showdown.py [--instance a280] [--iterations 3]
"""

from __future__ import annotations

import argparse

from repro import ACOParams, AntSystem, DEVICES, load_instance
from repro.core.construction import CONSTRUCTION_VERSIONS
from repro.experiments.harness import construction_model_time
from repro.tsp.suite import PAPER_INSTANCE_NAMES
from repro.util.tables import Table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--instance", default="kroC100", choices=PAPER_INSTANCE_NAMES)
    parser.add_argument("--iterations", type=int, default=3)
    parser.add_argument(
        "--model-only",
        action="store_true",
        help="skip functional runs (needed for pr1002/pr2392 task-based kernels)",
    )
    args = parser.parse_args()

    instance = load_instance(args.instance)
    c1060, m2050 = DEVICES["c1060"], DEVICES["m2050"]

    table = Table(
        ["v", "kernel", "C1060 model ms", "M2050 model ms", "best length"],
        title=f"tour construction showdown on {instance.name} (n={instance.n})",
    )

    for version in sorted(CONSTRUCTION_VERSIONS):
        label = CONSTRUCTION_VERSIONS[version].label
        t_c = construction_model_time(version, instance.name, c1060) * 1e3
        t_m = construction_model_time(version, instance.name, m2050) * 1e3

        if args.model_only:
            best = "-"
        else:
            colony = AntSystem(
                instance, ACOParams(seed=11, nn=30), construction=version, pheromone=1
            )
            best = colony.run(args.iterations).best_length
        table.add_row([version, label, f"{t_c:.2f}", f"{t_m:.2f}", best])

    print(table.render())
    print(
        "\nNote: modeled times are per iteration; the functional best-lengths "
        f"use {args.iterations} iterations with a shared seed."
    )


if __name__ == "__main__":
    main()
