"""Device scaling: the C1060-vs-M2050 story across the whole suite.

Prices the paper's best kernels (construction v8, pheromone v1) and the
sequential baseline on every benchmark instance through the calibrated
models, reproducing the figures' speed-up curves — including the float
atomic emulation cliff that caps the C1060's pheromone speed-up (Fig. 5)
and the small-instance regime where the CPU wins (Figs. 4(a)/5).

Run:  python examples/device_scaling.py
"""

from __future__ import annotations

from repro import DEVICES
from repro.experiments.harness import (
    construction_model_time,
    pheromone_model_time,
    sequential_model_time,
)
from repro.tsp.suite import TABLE3_INSTANCES
from repro.util.tables import Table


def main() -> None:
    c1060, m2050 = DEVICES["c1060"], DEVICES["m2050"]

    construction = Table(
        ["instance", "seq (ms)", "C1060 (ms)", "speedup", "M2050 (ms)", "speedup"],
        title="fully probabilistic tour construction (kernel v8 vs sequential)",
    )
    pheromone = Table(
        ["instance", "seq (ms)", "C1060 (ms)", "speedup", "M2050 (ms)", "speedup"],
        title="pheromone update (atomic + shared kernel vs sequential)",
    )

    for name in TABLE3_INSTANCES:
        seq_c = sequential_model_time("construct_full", name) * 1e3
        t_c = construction_model_time(8, name, c1060) * 1e3
        t_m = construction_model_time(8, name, m2050) * 1e3
        construction.add_row(
            [name, f"{seq_c:.1f}", f"{t_c:.2f}", f"{seq_c / t_c:.1f}x",
             f"{t_m:.2f}", f"{seq_c / t_m:.1f}x"]
        )

        seq_p = sequential_model_time("update", name) * 1e3
        p_c = pheromone_model_time(1, name, c1060) * 1e3
        p_m = pheromone_model_time(1, name, m2050) * 1e3
        pheromone.add_row(
            [name, f"{seq_p:.2f}", f"{p_c:.2f}", f"{seq_p / p_c:.2f}x",
             f"{p_m:.2f}", f"{seq_p / p_m:.2f}x"]
        )

    print(construction.render())
    print()
    print(pheromone.render())
    print(
        "\nReading guide: construction speed-ups grow into the double digits on "
        "both GPUs (paper Fig. 4(b): up to 22x / 29x);\nthe pheromone speed-up "
        "splits by an order of magnitude between the devices because the C1060 "
        "emulates float atomicAdd\nwith a CAS loop (paper Fig. 5: 3.87x vs 18.77x)."
    )


if __name__ == "__main__":
    main()
