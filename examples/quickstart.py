"""Quickstart: solve a TSP instance with the simulated GPU Ant System.

Runs the paper's best configuration — data-parallel tour construction with
texture reads (Table II version 8) plus the atomic+shared pheromone kernel
(Table III version 1) — on the att48 benchmark, on a simulated Tesla M2050.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import ACOParams, AntSystem, TESLA_M2050, load_instance
from repro.util.tables import Table, format_ms


def main() -> None:
    instance = load_instance("att48")
    print(f"instance: {instance.name} ({instance.n} cities, {instance.edge_weight_type})")

    colony = AntSystem(
        instance,
        params=ACOParams(alpha=1.0, beta=2.0, rho=0.5, nn=30, seed=42),
        device=TESLA_M2050,
        construction=8,  # "Data Parallelism + Texture Memory"
        pheromone=1,  # "Atomic Ins. + Shared Memory"
    )
    print(f"device:   {colony.device.name}")
    print(f"kernels:  {colony.construction.label}  +  {colony.pheromone.label}")
    print(f"colony:   m = {colony.state.m} ants (the paper's m = n)\n")

    result = colony.run(iterations=50)

    print(f"best tour length: {result.best_length}")
    print(f"first iteration best: {result.iteration_best_lengths[0]}")
    print(f"last iteration best:  {result.iteration_best_lengths[-1]}")
    print(f"best tour (first 12 cities): {result.best_tour[:12].tolist()} ...\n")

    cost = colony.cost_params()
    table = Table(["stage", "modeled ms / iteration"], title="simulated kernel times")
    for stage in ("choice", "construction", "pheromone"):
        table.add_row([stage, format_ms(result.mean_stage_time(stage, cost))])
    table.add_row(["total", format_ms(result.mean_iteration_time(cost))])
    print(table.render())
    print(f"\nwall-clock of the functional simulation: {result.wall_seconds:.2f}s "
          f"for 50 iterations")


if __name__ == "__main__":
    main()
