"""TSPLIB workflow: generate, write, parse, solve, export.

Shows the I/O substrate end to end: a synthetic instance is written in
TSPLIB format, parsed back (bit-identical distances), solved on the
simulated GPU, and the best tour is exported in TSPLIB TOUR format.

Real TSPLIB files work the same way: point ``parse_tsplib`` at any ``.tsp``
file with a supported EDGE_WEIGHT_TYPE (EUC_2D, CEIL_2D, MAN_2D, MAX_2D,
ATT, GEO, EXPLICIT).

Run:  python examples/tsplib_workflow.py [--out-dir /tmp/gpu-aco]
"""

from __future__ import annotations

import argparse
import os

import numpy as np

from repro import ACOParams, AntSystem, parse_tsplib
from repro.tsp import clustered_instance, write_tsplib


def export_tour(path: str, name: str, tour: np.ndarray) -> None:
    """Write a tour in TSPLIB TOUR format (1-based city indices)."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"NAME : {name}.tour\n")
        fh.write("TYPE : TOUR\n")
        fh.write(f"DIMENSION : {len(tour) - 1}\n")
        fh.write("TOUR_SECTION\n")
        for city in tour[:-1]:
            fh.write(f"{int(city) + 1}\n")
        fh.write("-1\nEOF\n")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out-dir", default="/tmp/gpu-aco-example")
    args = parser.parse_args()
    os.makedirs(args.out_dir, exist_ok=True)

    # 1. Generate and persist an instance.
    instance = clustered_instance(90, seed=9090, clusters=6, name="demo90")
    tsp_path = os.path.join(args.out_dir, "demo90.tsp")
    write_tsplib(instance, tsp_path)
    print(f"wrote {tsp_path}")

    # 2. Parse it back and verify the distances survived the round trip.
    parsed = parse_tsplib(tsp_path)
    assert np.array_equal(parsed.distance_matrix(), instance.distance_matrix())
    print(f"parsed back: {parsed.name}, n={parsed.n}, distances identical")

    # 3. Solve on the simulated GPU.
    colony = AntSystem(parsed, ACOParams(seed=5, nn=20), construction=8, pheromone=1)
    result = colony.run(iterations=40)
    print(f"best tour length after 40 iterations: {result.best_length}")

    # 4. Export the best tour.
    tour_path = os.path.join(args.out_dir, "demo90.tour")
    export_tour(tour_path, parsed.name, result.best_tour)
    print(f"wrote {tour_path}")


if __name__ == "__main__":
    main()
