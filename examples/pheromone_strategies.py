"""Pheromone-update strategies: one update, five execution plans.

All five Table III/IV kernels compute the *same* mathematical update
(evaporation + symmetric 1/C_k deposits); this example verifies that on a
real instance, then prices each strategy on both devices — reproducing the
paper's central trade-off: scatter-to-gather avoids atomics at the cost of
O(n^4 / θ) memory traffic, and loses by orders of magnitude.

Run:  python examples/pheromone_strategies.py [--instance a280]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import ACOParams, DEVICES, load_instance
from repro.core.pheromone import PHEROMONE_VERSIONS
from repro.core.state import ColonyState
from repro.experiments.harness import pheromone_model_time
from repro.tsp.suite import PAPER_INSTANCE_NAMES
from repro.tsp.tour import random_tour, tour_lengths
from repro.util.tables import Table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--instance", default="kroC100", choices=PAPER_INSTANCE_NAMES)
    args = parser.parse_args()

    instance = load_instance(args.instance)
    c1060, m2050 = DEVICES["c1060"], DEVICES["m2050"]

    # One set of tours shared by every strategy.
    rng = np.random.default_rng(7)
    n = instance.n
    tours = np.stack([random_tour(n, rng) for _ in range(n)])
    dist = instance.distance_matrix()
    lengths = tour_lengths(tours, dist)

    table = Table(
        ["v", "kernel", "C1060 model ms", "M2050 model ms", "matrix equal?"],
        title=f"pheromone update strategies on {instance.name} (n={n}, m={n})",
    )

    reference = None
    for version in sorted(PHEROMONE_VERSIONS):
        strategy = PHEROMONE_VERSIONS[version]()
        state = ColonyState.create(instance, ACOParams(seed=1), m2050)
        strategy.update(state, tours, lengths)

        if reference is None:
            reference = state.pheromone.copy()
            equal = "reference"
        else:
            equal = "yes" if np.allclose(reference, state.pheromone, rtol=1e-12) else "NO"

        t_c = pheromone_model_time(version, instance.name, c1060) * 1e3
        t_m = pheromone_model_time(version, instance.name, m2050) * 1e3
        table.add_row([version, strategy.label, f"{t_c:.2f}", f"{t_m:.2f}", equal])

    print(table.render())
    print(
        "\nThe atomic kernel wins despite serialisation; the C1060 pays a "
        "CAS-emulation factor for float atomics (CC 1.3), the M2050 does not —\n"
        "that asymmetry is the whole story of the paper's Figure 5."
    )


if __name__ == "__main__":
    main()
