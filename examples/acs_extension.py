"""ACS, MMAS + 2-opt: the paper's future work, implemented.

The paper's conclusion names the Ant Colony System as the next algorithm to
port to the GPU.  This example runs the three algorithms the repository
provides on one instance:

1. Ant System with the paper's best kernels (data-parallel + atomic),
2. Ant Colony System (pseudo-random-proportional rule, local + global-best
   updates),
3. MAX-MIN Ant System (trail limits, best-only deposit — the variant the
   paper's related work GPU-ported),
4. all of them with 2-opt polishing the best tour.

Run:  python examples/acs_extension.py [--n 150] [--iterations 25]
"""

from __future__ import annotations

import argparse

from repro import ACOParams, ACSParams, AntColonySystem, AntSystem, MaxMinAntSystem
from repro.tsp import clustered_instance, two_opt
from repro.tsp.tour import nearest_neighbor_tour, tour_length
from repro.util.tables import Table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=150)
    parser.add_argument("--iterations", type=int, default=25)
    parser.add_argument("--seed", type=int, default=99)
    args = parser.parse_args()

    instance = clustered_instance(args.n, seed=args.seed, clusters=8)
    dist = instance.distance_matrix()
    greedy = tour_length(nearest_neighbor_tour(dist), dist)

    params = ACOParams(seed=args.seed, nn=25)

    ant_system = AntSystem(instance, params, construction=8, pheromone=1)
    as_result = ant_system.run(args.iterations)
    as_polished = two_opt(as_result.best_tour, dist)

    acs = AntColonySystem(instance, params, ACSParams(q0=0.9, xi=0.1))
    acs_result = acs.run(args.iterations)
    acs_polished = two_opt(acs_result.best_tour, dist)

    mmas = MaxMinAntSystem(instance, params)
    mmas_result = mmas.run(args.iterations)
    mmas_polished = two_opt(mmas_result.best_tour, dist)

    table = Table(
        ["algorithm", "best length", "+2-opt", "vs greedy NN"],
        title=f"{instance.name} (n={args.n}), {args.iterations} iterations",
    )
    table.add_row(["greedy nearest neighbour", greedy, "-", "0.0%"])
    for label, raw, polished in (
        ("Ant System (GPU kernels)", as_result.best_length, as_polished.length),
        ("Ant Colony System", acs_result.best_length, acs_polished.length),
        ("MAX-MIN Ant System", mmas_result.best_length, mmas_polished.length),
    ):
        gain = 100.0 * (greedy - polished) / greedy
        table.add_row([label, raw, polished, f"{gain:.1f}%"])
    print(table.render())

    print(
        f"\n2-opt passes: AS {as_polished.passes}, ACS {acs_polished.passes} — "
        "ACS tours need fewer repairs because exploitation (q0 = 0.9) already "
        "follows the strongest edges."
    )


if __name__ == "__main__":
    main()
