"""Setup shim: lets `python setup.py develop` work where pip's PEP-517
editable path is unavailable (offline environments without the `wheel`
package).  All metadata lives in pyproject.toml."""
from setuptools import setup

setup()
